//! Scoring-function abstractions shared by the objectives.
//!
//! The objective set is described by [`Objective`] and sized by
//! [`NUM_OBJECTIVES`]; nothing downstream hardwires a component count.  A
//! [`ScoreVector`] always carries one slot per objective in canonical
//! order — samplers that run with the burial objective disabled simply leave
//! its slot at exactly `0.0`, which makes every comparison (dominance,
//! normalisation, fitness) reduce bit-identically to the three-objective
//! behaviour: a component that is equal on both sides can neither veto nor
//! establish dominance.

use crate::workspace::ScoreScratch;
use lms_protein::{LoopStructure, LoopTarget, Torsions};
use std::fmt;

/// Number of scoring functions (objectives) a [`ScoreVector`] carries, in
/// the canonical order (VDW, DIST, TRIPLET, BURIAL).
pub const NUM_OBJECTIVES: usize = 4;

/// A backbone scoring function evaluated on a built loop conformation.
///
/// Implementations must be cheap to evaluate (they run once per
/// conformation per iteration, i.e. millions of times per trajectory) and
/// thread-safe, because the executor evaluates the population in parallel.
///
/// The primary entry point is [`ScoringFunction::score_with`], which stages
/// intermediate data in a caller-owned [`ScoreScratch`] and performs no heap
/// allocation after warm-up.  [`ScoringFunction::score`] is a convenience
/// wrapper that allocates a throwaway scratch; both paths run the identical
/// kernel and therefore return bit-identical values.
///
/// **Batch awareness.**  The scratch buffers are member-major SoA slices:
/// the population-batched sampler pipeline leases one scratch per member
/// from a shared pool and launches the objectives as separate
/// population-wide kernels in canonical order, with the shared staging of
/// one pass feeding the next (the VDW pass records the Cα–Cα distance
/// table and the BURIAL contact counts its cell-list gathers produce; the
/// DIST pass reads its bounding check from that table — see
/// `MultiScorer::vdw_pass`/`dist_pass`/`triplet_pass` in this crate).
/// Implementations must therefore treat the scratch as stage-owned state
/// that persists between kernels of the same evaluation, never as private
/// storage that may be reset wholesale mid-evaluation.
pub trait ScoringFunction: Send + Sync {
    /// Short identifier used in reports (`"VDW"`, `"DIST"`, `"TRIPLET"`,
    /// `"BURIAL"`).
    fn name(&self) -> &'static str;

    /// Score a conformation; lower is better.  Thin allocating wrapper over
    /// [`ScoringFunction::score_with`], kept for call sites that evaluate
    /// rarely and don't want to manage a workspace.
    fn score(&self, target: &LoopTarget, structure: &LoopStructure, torsions: &Torsions) -> f64 {
        let mut scratch = ScoreScratch::new();
        self.score_with(target, structure, torsions, &mut scratch)
    }

    /// Score a conformation using caller-owned scratch buffers; lower is
    /// better.  Must not allocate once `scratch` has warmed up on this loop
    /// length, and must return exactly the same value as
    /// [`ScoringFunction::score`].
    fn score_with(
        &self,
        target: &LoopTarget,
        structure: &LoopStructure,
        torsions: &Torsions,
        scratch: &mut ScoreScratch,
    ) -> f64;
}

/// The vector of objective values for one conformation, one slot per
/// [`Objective`] in the fixed (VDW, DIST, TRIPLET, BURIAL) order.
///
/// Three-objective pipelines leave the BURIAL slot at exactly `0.0`; all
/// comparisons then reduce bit-identically to the three-objective ones.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ScoreVector {
    values: [f64; NUM_OBJECTIVES],
}

impl ScoreVector {
    /// Construct from the three core components, leaving the burial slot at
    /// `0.0` (the disabled-objective convention).
    pub fn new(vdw: f64, dist: f64, triplet: f64) -> Self {
        ScoreVector {
            values: [vdw, dist, triplet, 0.0],
        }
    }

    /// Replace the burial component.
    #[must_use]
    pub fn with_burial(mut self, burial: f64) -> Self {
        self.values[Objective::Burial.index()] = burial;
        self
    }

    /// Soft-sphere van der Waals clash score.
    pub fn vdw(&self) -> f64 {
        self.values[Objective::Vdw.index()]
    }

    /// Atom pair-wise distance-based score.
    pub fn dist(&self) -> f64 {
        self.values[Objective::Dist.index()]
    }

    /// Triplet torsion-angle score.
    pub fn triplet(&self) -> f64 {
        self.values[Objective::Triplet.index()]
    }

    /// Solvation/burial contact-number score (`0.0` when the objective is
    /// disabled).
    pub fn burial(&self) -> f64 {
        self.values[Objective::Burial.index()]
    }

    /// One component by objective index (canonical order).
    pub fn component(&self, index: usize) -> f64 {
        self.values[index]
    }

    /// The components as an array in canonical objective order.
    pub fn as_array(&self) -> [f64; NUM_OBJECTIVES] {
        self.values
    }

    /// Build from an array in canonical objective order.
    pub fn from_array(values: [f64; NUM_OBJECTIVES]) -> Self {
        ScoreVector { values }
    }

    /// Pareto dominance: `self` dominates `other` iff it is no worse in
    /// every objective and strictly better in at least one (lower = better).
    pub fn dominates(&self, other: &ScoreVector) -> bool {
        let mut strictly_better = false;
        for i in 0..NUM_OBJECTIVES {
            if self.values[i] > other.values[i] {
                return false;
            }
            if self.values[i] < other.values[i] {
                strictly_better = true;
            }
        }
        strictly_better
    }

    /// Whether every component is finite.
    pub fn is_finite(&self) -> bool {
        self.values.iter().all(|v| v.is_finite())
    }

    /// The first objective (in canonical order) whose component is
    /// non-finite, if any — the diagnostic half of the numerical health
    /// sweep: when a score vector is poisoned, this names the scoring
    /// function that produced the poison.
    pub fn first_non_finite(&self) -> Option<Objective> {
        Objective::ALL
            .into_iter()
            .find(|o| !self.values[o.index()].is_finite())
    }
}

impl fmt::Display for ScoreVector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, obj) in Objective::ALL.iter().enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            write!(f, "{}={:.3}", obj.name(), self.values[i])?;
        }
        Ok(())
    }
}

/// Identifies one objective; used by the ablation benches, the
/// single-objective baseline and the normalisation helpers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Objective {
    /// Soft-sphere van der Waals clash score.
    Vdw,
    /// Atom pair-wise distance-based score.
    Dist,
    /// Triplet torsion-angle score.
    Triplet,
    /// Solvation/burial contact-number score.
    Burial,
}

impl Objective {
    /// All objectives in canonical (VDW, DIST, TRIPLET, BURIAL) order.
    pub const ALL: [Objective; NUM_OBJECTIVES] = [
        Objective::Vdw,
        Objective::Dist,
        Objective::Triplet,
        Objective::Burial,
    ];

    /// Stable slot index in `[0, NUM_OBJECTIVES)` (canonical order).
    pub fn index(&self) -> usize {
        match self {
            Objective::Vdw => 0,
            Objective::Dist => 1,
            Objective::Triplet => 2,
            Objective::Burial => 3,
        }
    }

    /// Extract this objective's value from a score vector.
    pub fn value(&self, s: &ScoreVector) -> f64 {
        s.component(self.index())
    }

    /// Display name matching the paper's figures.
    pub fn name(&self) -> &'static str {
        match self {
            Objective::Vdw => "VDW",
            Objective::Dist => "DIST",
            Objective::Triplet => "TRIPLET",
            Objective::Burial => "BURIAL",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn array_roundtrip() {
        let s = ScoreVector::new(1.0, 2.0, 3.0);
        assert_eq!(ScoreVector::from_array(s.as_array()), s);
        assert_eq!(s.as_array(), [1.0, 2.0, 3.0, 0.0]);
        let b = s.with_burial(4.0);
        assert_eq!(b.as_array(), [1.0, 2.0, 3.0, 4.0]);
        assert_eq!(b.burial(), 4.0);
    }

    #[test]
    fn dominance_relation() {
        let a = ScoreVector::new(1.0, 1.0, 1.0);
        let b = ScoreVector::new(2.0, 2.0, 2.0);
        let c = ScoreVector::new(0.5, 3.0, 1.0);
        assert!(a.dominates(&b));
        assert!(!b.dominates(&a));
        // Incomparable pair.
        assert!(!a.dominates(&c));
        assert!(!c.dominates(&a));
        // No self-domination.
        assert!(!a.dominates(&a));
        // Equal in some, better in one.
        let d = ScoreVector::new(1.0, 1.0, 0.5);
        assert!(d.dominates(&a));
        assert!(!a.dominates(&d));
    }

    #[test]
    fn burial_component_participates_in_dominance() {
        let a = ScoreVector::new(1.0, 1.0, 1.0).with_burial(1.0);
        let b = ScoreVector::new(1.0, 1.0, 1.0).with_burial(2.0);
        assert!(a.dominates(&b));
        assert!(!b.dominates(&a));
        // A zero burial slot on both sides changes nothing: the pair reduces
        // to the three-objective comparison.
        let x = ScoreVector::new(1.0, 2.0, 3.0);
        let y = ScoreVector::new(2.0, 3.0, 4.0);
        assert!(x.dominates(&y));
        assert!(!y.dominates(&x));
    }

    #[test]
    fn finiteness() {
        assert!(ScoreVector::new(1.0, 2.0, 3.0).is_finite());
        assert!(!ScoreVector::new(f64::NAN, 2.0, 3.0).is_finite());
        assert_eq!(ScoreVector::new(1.0, 2.0, 3.0).first_non_finite(), None);
        assert_eq!(
            ScoreVector::new(1.0, f64::INFINITY, 3.0).first_non_finite(),
            Some(Objective::Dist)
        );
        assert_eq!(
            ScoreVector::new(f64::NAN, f64::NAN, 3.0).first_non_finite(),
            Some(Objective::Vdw)
        );
        assert!(!ScoreVector::new(1.0, f64::INFINITY, 3.0).is_finite());
        assert!(!ScoreVector::new(1.0, 2.0, 3.0)
            .with_burial(f64::NAN)
            .is_finite());
    }

    #[test]
    fn objective_accessors() {
        let s = ScoreVector::new(1.0, 2.0, 3.0).with_burial(4.0);
        assert_eq!(Objective::Vdw.value(&s), 1.0);
        assert_eq!(Objective::Dist.value(&s), 2.0);
        assert_eq!(Objective::Triplet.value(&s), 3.0);
        assert_eq!(Objective::Burial.value(&s), 4.0);
        assert_eq!(Objective::ALL.len(), NUM_OBJECTIVES);
        for (i, obj) in Objective::ALL.iter().enumerate() {
            assert_eq!(obj.index(), i);
        }
        assert_eq!(Objective::Vdw.name(), "VDW");
        assert_eq!(Objective::Burial.name(), "BURIAL");
    }

    #[test]
    fn display_contains_all_components() {
        let s = format!("{}", ScoreVector::new(1.5, 2.5, 3.5).with_burial(4.5));
        assert!(s.contains("VDW=1.5"));
        assert!(s.contains("DIST=2.5"));
        assert!(s.contains("TRIPLET=3.5"));
        assert!(s.contains("BURIAL=4.5"));
    }
}
