//! The DIST scoring function.
//!
//! "The atom pair-wise distance-based scoring function measures the
//! favorability of pair-wise backbone atom positions within a protein
//! loop."  (Paper, §III.B.)  Each backbone atom pair at sequence separation
//! ≥ 2 contributes a table energy indexed by the two atom kinds, the
//! separation class and the binned distance.  The table is the DIST half of
//! the synthetic [`KnowledgeBase`].

use crate::library::{BackboneAtomKind, KnowledgeBase, SeparationClass, DIST_MAX};
use crate::traits::ScoringFunction;
use lms_geometry::Vec3;
use lms_protein::{LoopStructure, LoopTarget, Torsions};
use std::sync::Arc;

/// Atom pair-wise distance-based statistical potential.
#[derive(Debug, Clone)]
pub struct DistScore {
    kb: Arc<KnowledgeBase>,
}

impl DistScore {
    /// Create the scoring function over a pre-built knowledge base.
    pub fn new(kb: Arc<KnowledgeBase>) -> Self {
        DistScore { kb }
    }

    /// Score a built structure directly (without needing the target).
    pub fn score_structure(&self, structure: &LoopStructure) -> f64 {
        let per_res: Vec<[(BackboneAtomKind, Vec3); 4]> = structure
            .residues
            .iter()
            .map(|r| {
                [
                    (BackboneAtomKind::N, r.n),
                    (BackboneAtomKind::Ca, r.ca),
                    (BackboneAtomKind::C, r.c),
                    (BackboneAtomKind::O, r.o),
                ]
            })
            .collect();
        let n = per_res.len();
        let mut total = 0.0;
        let mut pairs = 0usize;
        for i in 0..n {
            for j in (i + 1)..n {
                let Some(sep) = SeparationClass::from_separation(j - i) else { continue };
                for &(ka, pa) in &per_res[i] {
                    for &(kb_kind, pb) in &per_res[j] {
                        let d = pa.distance(pb);
                        // Pairs beyond the table range carry no statistical
                        // signal and are skipped, matching how the table was
                        // built.
                        if d >= DIST_MAX {
                            continue;
                        }
                        total += self.kb.dist.energy(ka, kb_kind, sep, d);
                        pairs += 1;
                    }
                }
            }
        }
        if pairs == 0 {
            0.0
        } else {
            total / pairs as f64
        }
    }
}

impl ScoringFunction for DistScore {
    fn name(&self) -> &'static str {
        "DIST"
    }

    fn score(&self, _target: &LoopTarget, structure: &LoopStructure, _torsions: &Torsions) -> f64 {
        self.score_structure(structure)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::library::KnowledgeBaseConfig;
    use lms_geometry::deg_to_rad;
    use lms_protein::{BenchmarkLibrary, LoopBuilder, Torsions};

    fn scorer() -> DistScore {
        DistScore::new(KnowledgeBase::build(KnowledgeBaseConfig::fast()))
    }

    #[test]
    fn name_is_dist() {
        assert_eq!(scorer().name(), "DIST");
    }

    #[test]
    fn compact_self_clashing_loop_scores_worse_than_native() {
        let s = scorer();
        let lib = BenchmarkLibrary::standard();
        let target = lib.target_by_name("1akz").unwrap();
        let builder = LoopBuilder::default();

        let native = target.build(&builder, &target.native_torsions);
        let native_score = s.score(&target, &native, &target.native_torsions);

        // A conformation with all torsions at 0 degrees coils the backbone
        // into a tight, clashing spiral — distances pile into the
        // short-range bins that the table penalises.
        let clashing_torsions = Torsions::zeros(target.n_residues());
        let clashing = target.build(&builder, &clashing_torsions);
        let clashing_score = s.score(&target, &clashing, &clashing_torsions);
        assert!(
            native_score < clashing_score,
            "native {native_score} should beat clashing {clashing_score}"
        );
    }

    #[test]
    fn score_is_translation_invariant() {
        // DIST only depends on internal distances, so two targets whose
        // structures differ by a rigid motion give the same score.  We test
        // the weaker but directly checkable property that scoring the same
        // structure twice is identical and scoring a structure built from
        // the same torsions at a different anchor gives a very similar
        // value (identical internal geometry).
        let s = scorer();
        let lib = BenchmarkLibrary::standard();
        let t1 = lib.target_by_name("1cex").unwrap();
        let builder = LoopBuilder::default();
        let torsions = Torsions::from_pairs(&vec![(deg_to_rad(-63.0), deg_to_rad(-43.0)); t1.n_residues()]);
        let s1 = t1.build(&builder, &torsions);
        let a = s.score_structure(&s1);
        let b = s.score_structure(&s1);
        assert_eq!(a, b);

        let t2 = lib.target_by_name("1ixh").unwrap();
        assert_eq!(t2.n_residues(), t1.n_residues());
        let s2 = t2.build(&builder, &torsions);
        let c = s.score_structure(&s2);
        assert!((a - c).abs() < 1e-9, "same torsions, different frame: {a} vs {c}");
    }

    #[test]
    fn empty_pair_set_scores_zero() {
        // A 2-residue "loop" has no pairs at separation >= 2.
        let s = scorer();
        let lib = BenchmarkLibrary::standard();
        let target = lib.target_by_name("1cex").unwrap();
        let builder = LoopBuilder::default();
        let torsions = Torsions::from_pairs(&[
            (deg_to_rad(-63.0), deg_to_rad(-43.0)),
            (deg_to_rad(-63.0), deg_to_rad(-43.0)),
        ]);
        let seq = target.sequence[..2].to_vec();
        let structure = builder.build(&target.frame, &seq, &torsions);
        assert_eq!(s.score_structure(&structure), 0.0);
    }
}
