//! The DIST scoring function.
//!
//! "The atom pair-wise distance-based scoring function measures the
//! favorability of pair-wise backbone atom positions within a protein
//! loop."  (Paper, §III.B.)  Each backbone atom pair at sequence separation
//! ≥ 2 contributes a table energy indexed by the two atom kinds, the
//! separation class and the binned distance.  The table is the DIST half of
//! the synthetic [`KnowledgeBase`].

use crate::library::{BackboneAtomKind, KnowledgeBase, SeparationClass, DIST_MAX};
use crate::traits::ScoringFunction;
use crate::workspace::ScoreScratch;
use lms_protein::{LoopStructure, LoopTarget, Torsions};
use std::sync::Arc;

/// Upper bound (Å) on the distance from any backbone heavy atom to its own
/// residue's Cα under ideal covalent geometry.  N sits 1.458 Å away, C'
/// 1.525 Å, and O at most 2.41 Å (law of cosines over Cα–C'=O); 2.45 Å
/// bounds all three with margin.
const MAX_ATOM_CA_OFFSET: f64 = 2.45;

/// Atom pair-wise distance-based statistical potential.
#[derive(Debug, Clone)]
pub struct DistScore {
    kb: Arc<KnowledgeBase>,
}

impl DistScore {
    /// Create the scoring function over a pre-built knowledge base.
    pub fn new(kb: Arc<KnowledgeBase>) -> Self {
        DistScore { kb }
    }

    /// Score a built structure reading the Cα–Cα bounding check from the
    /// scratch's shared `ca_d2` table (filled by the VDW intra-loop pass of
    /// the same evaluation), instead of recomputing the Cα geometry per
    /// residue pair.  The table holds exactly the squared distances this
    /// kernel's own bound would compute — same coordinates, same arithmetic
    /// — so the pair skips, and therefore the score, are bit-identical to
    /// [`DistScore::score_structure_with`] (property-tested in
    /// `tests/workspace_equivalence.rs`).
    ///
    /// This is the staged-pipeline path: [`crate::MultiScorer`] launches the
    /// VDW kernel first, so the table is always fresh when DIST runs.
    pub fn score_structure_with_ca_table(
        &self,
        structure: &LoopStructure,
        scratch: &mut ScoreScratch,
    ) -> f64 {
        // The table is consume-once: staged by the VDW pass of the same
        // evaluation, invalidated here.  A stale table (e.g. staged for a
        // previous structure of the same loop length) would silently skip
        // the wrong pairs, so misuse fails loudly in every build profile.
        let n = structure.residues.len();
        assert!(
            scratch.ca_d2_staged && scratch.ca_d2.len() == n * n,
            "ca_d2 table not staged for this structure; run the VDW pass first"
        );
        scratch.ca_d2_staged = false;
        self.score_structure_inner(structure, scratch, true)
    }

    /// Score a built structure directly, staging atom coordinates in the
    /// caller's scratch SoA buffers (no allocation after warm-up).
    pub fn score_structure_with(
        &self,
        structure: &LoopStructure,
        scratch: &mut ScoreScratch,
    ) -> f64 {
        self.score_structure_inner(structure, scratch, false)
    }

    fn score_structure_inner(
        &self,
        structure: &LoopStructure,
        scratch: &mut ScoreScratch,
        use_ca_table: bool,
    ) -> f64 {
        // Stage the backbone atoms as flat split-coordinate arrays: atom
        // `4*i + k` is residue i's (N, Cα, C', O)[k].
        scratch.atom_x.clear();
        scratch.atom_y.clear();
        scratch.atom_z.clear();
        for r in &structure.residues {
            for p in r.backbone() {
                scratch.atom_x.push(p.x);
                scratch.atom_y.push(p.y);
                scratch.atom_z.push(p.z);
            }
        }
        let (xs, ys, zs) = (&scratch.atom_x, &scratch.atom_y, &scratch.atom_z);
        let n = structure.residues.len();
        let mut total = 0.0;
        let mut pairs = 0usize;
        for i in 0..n {
            for j in (i + 1)..n {
                let Some(sep) = SeparationClass::from_separation(j - i) else {
                    continue;
                };
                // Cheap bounding check: every atom lies within
                // MAX_ATOM_CA_OFFSET of its residue's Cα, so when the Cα–Cα
                // distance exceeds DIST_MAX by twice that offset, all 16
                // atom pairs are ≥ DIST_MAX and would be skipped anyway.
                // The staged path reads the squared distance from the shared
                // table the VDW pass recorded for this pair; the fallback
                // recomputes it from the staged Cα coordinates.  The values
                // are bit-identical, so both paths skip the same pairs.
                let bound = DIST_MAX + 2.0 * MAX_ATOM_CA_OFFSET;
                let ca_gap2 = if use_ca_table {
                    scratch.ca_d2[i * n + j]
                } else {
                    let (ca_i, ca_j) = (4 * i + 1, 4 * j + 1);
                    let dx = xs[ca_i] - xs[ca_j];
                    let dy = ys[ca_i] - ys[ca_j];
                    let dz = zs[ca_i] - zs[ca_j];
                    dx * dx + dy * dy + dz * dz
                };
                if ca_gap2 >= bound * bound {
                    continue;
                }
                for a in (4 * i)..(4 * i + 4) {
                    let ka = BackboneAtomKind::ALL[a % 4];
                    for b in (4 * j)..(4 * j + 4) {
                        let dx = xs[a] - xs[b];
                        let dy = ys[a] - ys[b];
                        let dz = zs[a] - zs[b];
                        let d = (dx * dx + dy * dy + dz * dz).sqrt();
                        // Pairs beyond the table range carry no statistical
                        // signal and are skipped, matching how the table was
                        // built.
                        if d >= DIST_MAX {
                            continue;
                        }
                        total += self
                            .kb
                            .dist
                            .energy(ka, BackboneAtomKind::ALL[b % 4], sep, d);
                        pairs += 1;
                    }
                }
            }
        }
        if pairs == 0 {
            0.0
        } else {
            total / pairs as f64
        }
    }

    /// Score a built structure directly (without needing the target);
    /// allocating wrapper over [`DistScore::score_structure_with`].
    pub fn score_structure(&self, structure: &LoopStructure) -> f64 {
        let mut scratch = ScoreScratch::new();
        self.score_structure_with(structure, &mut scratch)
    }
}

impl ScoringFunction for DistScore {
    fn name(&self) -> &'static str {
        "DIST"
    }

    fn score_with(
        &self,
        _target: &LoopTarget,
        structure: &LoopStructure,
        _torsions: &Torsions,
        scratch: &mut ScoreScratch,
    ) -> f64 {
        self.score_structure_with(structure, scratch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::library::KnowledgeBaseConfig;
    use lms_geometry::deg_to_rad;
    use lms_protein::{BenchmarkLibrary, LoopBuilder, Torsions};

    fn scorer() -> DistScore {
        DistScore::new(KnowledgeBase::build(KnowledgeBaseConfig::fast()))
    }

    #[test]
    fn name_is_dist() {
        assert_eq!(scorer().name(), "DIST");
    }

    #[test]
    fn compact_self_clashing_loop_scores_worse_than_native() {
        let s = scorer();
        let lib = BenchmarkLibrary::standard();
        let target = lib.target_by_name("1akz").unwrap();
        let builder = LoopBuilder::default();

        let native = target.build(&builder, &target.native_torsions);
        let native_score = s.score(&target, &native, &target.native_torsions);

        // A conformation with all torsions at 0 degrees coils the backbone
        // into a tight, clashing spiral — distances pile into the
        // short-range bins that the table penalises.
        let clashing_torsions = Torsions::zeros(target.n_residues());
        let clashing = target.build(&builder, &clashing_torsions);
        let clashing_score = s.score(&target, &clashing, &clashing_torsions);
        assert!(
            native_score < clashing_score,
            "native {native_score} should beat clashing {clashing_score}"
        );
    }

    #[test]
    fn score_is_translation_invariant() {
        // DIST only depends on internal distances, so two targets whose
        // structures differ by a rigid motion give the same score.  We test
        // the weaker but directly checkable property that scoring the same
        // structure twice is identical and scoring a structure built from
        // the same torsions at a different anchor gives a very similar
        // value (identical internal geometry).
        let s = scorer();
        let lib = BenchmarkLibrary::standard();
        let t1 = lib.target_by_name("1cex").unwrap();
        let builder = LoopBuilder::default();
        let torsions = Torsions::from_pairs(&vec![
            (deg_to_rad(-63.0), deg_to_rad(-43.0));
            t1.n_residues()
        ]);
        let s1 = t1.build(&builder, &torsions);
        let a = s.score_structure(&s1);
        let b = s.score_structure(&s1);
        assert_eq!(a, b);

        let t2 = lib.target_by_name("1ixh").unwrap();
        assert_eq!(t2.n_residues(), t1.n_residues());
        let s2 = t2.build(&builder, &torsions);
        let c = s.score_structure(&s2);
        assert!(
            (a - c).abs() < 1e-9,
            "same torsions, different frame: {a} vs {c}"
        );
    }

    #[test]
    fn ca_table_path_matches_own_bound_path_bitwise() {
        use crate::vdw::VdwScore;
        let s = scorer();
        let vdw = VdwScore::default();
        let lib = BenchmarkLibrary::standard();
        let builder = LoopBuilder::default();
        let factory = lms_geometry::StreamRngFactory::new(23);
        for name in ["1cex", "1xyz", "1akz"] {
            let target = lib.target_by_name(name).unwrap();
            let mut scratch = ScoreScratch::new();
            for trial in 0..12u64 {
                let mut rng = factory.stream(trial, 0);
                let mut torsions = target.native_torsions.clone();
                for k in 0..torsions.n_angles() {
                    torsions.rotate_angle(k, lms_geometry::random_torsion(&mut rng) * 0.3);
                }
                let structure = target.build(&builder, &torsions);
                // Stage the shared table exactly as the pipeline does: the
                // VDW pass runs first on the same scratch.
                vdw.score_target_with(&target, &structure, &mut scratch);
                let table = s.score_structure_with_ca_table(&structure, &mut scratch);
                let own = s.score_structure_with(&structure, &mut scratch);
                assert_eq!(
                    table.to_bits(),
                    own.to_bits(),
                    "{name} trial {trial}: shared-table DIST diverged"
                );
            }
        }
    }

    #[test]
    fn empty_pair_set_scores_zero() {
        // A 2-residue "loop" has no pairs at separation >= 2.
        let s = scorer();
        let lib = BenchmarkLibrary::standard();
        let target = lib.target_by_name("1cex").unwrap();
        let builder = LoopBuilder::default();
        let torsions = Torsions::from_pairs(&[
            (deg_to_rad(-63.0), deg_to_rad(-43.0)),
            (deg_to_rad(-63.0), deg_to_rad(-43.0)),
        ]);
        let seq = target.sequence[..2].to_vec();
        let structure = builder.build(&target.frame, &seq, &torsions);
        assert_eq!(s.score_structure(&structure), 0.0);
    }
}
