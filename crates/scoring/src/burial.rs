//! The BURIAL (solvation/contact-number) scoring function.
//!
//! Knowledge-based decoy discrimination consistently leans on burial-depth
//! terms: compact decoys can satisfy clash and pairwise-distance potentials
//! while still burying polar residues or exposing hydrophobic ones.  The
//! BURIAL objective measures, per loop residue, the number of fixed
//! environment atoms within [`BurialScore::radius`] of the residue's Cα and
//! scores that contact number against the residue type's reference
//! distribution from the [`KnowledgeBase`]'s
//! [`BurialTable`](crate::library::BurialTable) (hydrophobic types are
//! centred on deeper burial than polar ones).
//!
//! ## Sharing the environment gather with VDW
//!
//! Counting environment contacts needs exactly the same cell-list query the
//! VDW environment term already performs per site.  The production path
//! therefore does **not** run this kernel standalone: when the objective is
//! enabled, [`MultiScorer::evaluate_with`](crate::MultiScorer::evaluate_with)
//! runs the combined VDW pass
//! ([`VdwScore::score_target_with_burial`](crate::VdwScore::score_target_with_burial)),
//! which widens the Cα-site query to cover the burial radius and derives the
//! contact counts from the *same* gathered index list the VDW sum consumes —
//! one gather serves both objectives.  Because a contact count is an
//! integer filtered by an exact distance cutoff, any conservative superset
//! gathers to the identical count, so the shared path, the standalone
//! cell-list path here, and the exhaustive linear scan
//! ([`BurialScore::score_target_linear`]) all agree bit for bit
//! (property-tested in `tests/burial_equivalence.rs`).

use crate::library::KnowledgeBase;
use crate::traits::ScoringFunction;
use crate::workspace::ScoreScratch;
use lms_protein::{LoopStructure, LoopTarget, Torsions};
use std::sync::Arc;

/// Default burial probe radius (Å) around each residue's Cα.  Must not
/// exceed [`lms_protein::ENV_CONTACT_MARGIN`], which bounds what the
/// per-target candidate set is guaranteed to contain.
pub const BURIAL_RADIUS: f64 = 7.0;

/// Solvation/burial contact-number statistical potential.
#[derive(Debug, Clone)]
pub struct BurialScore {
    kb: Arc<KnowledgeBase>,
    radius: f64,
}

impl BurialScore {
    /// Create the scoring function over a pre-built knowledge base with the
    /// default probe radius.
    pub fn new(kb: Arc<KnowledgeBase>) -> Self {
        BurialScore {
            kb,
            radius: BURIAL_RADIUS,
        }
    }

    /// The burial probe radius (Å).
    pub fn radius(&self) -> f64 {
        self.radius
    }

    /// Score a structure from per-residue contact counts that were already
    /// computed (by the shared VDW/BURIAL environment pass or by one of the
    /// counting paths below): the mean reference energy of each residue
    /// type at its observed burial.
    pub fn score_from_counts(&self, target: &LoopTarget, counts: &[u32]) -> f64 {
        debug_assert_eq!(counts.len(), target.n_residues());
        let n = counts.len();
        if n == 0 {
            return 0.0;
        }
        let mut total = 0.0;
        for (aa, &count) in target.sequence.iter().zip(counts.iter()) {
            total += self.kb.burial.energy(*aa, count as usize);
        }
        total / n as f64
    }

    /// Fill `scratch.burial_counts` with each residue's environment contact
    /// count via the per-target candidate cell list (one gather per
    /// residue).  Standalone path: the production pipeline gets the counts
    /// for free from the shared VDW gather instead.
    pub fn counts_with(
        &self,
        target: &LoopTarget,
        structure: &LoopStructure,
        scratch: &mut ScoreScratch,
    ) {
        debug_assert!(
            self.radius <= lms_protein::ENV_CONTACT_MARGIN,
            "burial radius {} exceeds the environment candidate margin {}",
            self.radius,
            lms_protein::ENV_CONTACT_MARGIN
        );
        let env = target.env_candidates();
        scratch.burial_counts.clear();
        if scratch.env_idx.capacity() < env.len() {
            scratch.env_idx.clear();
            scratch.env_idx.reserve(env.len());
        }
        for res in &structure.residues {
            scratch.env_idx.clear();
            env.gather_within(res.ca, self.radius, &mut scratch.env_idx);
            scratch
                .burial_counts
                .push(env.count_within(res.ca, self.radius, &scratch.env_idx));
        }
    }

    /// Score a structure through the standalone cell-list counting path.
    pub fn score_target_with(
        &self,
        target: &LoopTarget,
        structure: &LoopStructure,
        scratch: &mut ScoreScratch,
    ) -> f64 {
        self.counts_with(target, structure, scratch);
        let counts = std::mem::take(&mut scratch.burial_counts);
        let score = self.score_from_counts(target, &counts);
        scratch.burial_counts = counts;
        score
    }

    /// Score a structure through the exhaustive linear-scan reference the
    /// cell-list paths must match bit for bit.
    pub fn score_target_linear(&self, target: &LoopTarget, structure: &LoopStructure) -> f64 {
        let env = target.env_candidates();
        let n = structure.n_residues();
        if n == 0 {
            return 0.0;
        }
        let mut total = 0.0;
        for (aa, res) in target.sequence.iter().zip(structure.residues.iter()) {
            let count = env.count_within_linear(res.ca, self.radius);
            total += self.kb.burial.energy(*aa, count as usize);
        }
        total / n as f64
    }
}

impl ScoringFunction for BurialScore {
    fn name(&self) -> &'static str {
        "BURIAL"
    }

    fn score_with(
        &self,
        target: &LoopTarget,
        structure: &LoopStructure,
        _torsions: &Torsions,
        scratch: &mut ScoreScratch,
    ) -> f64 {
        self.score_target_with(target, structure, scratch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::library::KnowledgeBaseConfig;
    use lms_protein::{BenchmarkLibrary, LoopBuilder};

    fn scorer() -> BurialScore {
        BurialScore::new(KnowledgeBase::build(KnowledgeBaseConfig::fast()))
    }

    #[test]
    fn name_and_radius() {
        let s = scorer();
        assert_eq!(s.name(), "BURIAL");
        assert_eq!(s.radius(), BURIAL_RADIUS);
        assert!(s.radius() <= lms_protein::ENV_CONTACT_MARGIN);
    }

    #[test]
    fn cell_list_matches_linear_reference_on_benchmark_targets() {
        let s = scorer();
        let lib = BenchmarkLibrary::standard();
        let builder = LoopBuilder::default();
        for name in ["1cex", "1xyz", "5pti"] {
            let target = lib.target_by_name(name).unwrap();
            let native = target.build(&builder, &target.native_torsions);
            let mut scratch = ScoreScratch::new();
            let cells = s.score_target_with(&target, &native, &mut scratch);
            let linear = s.score_target_linear(&target, &native);
            assert_eq!(cells.to_bits(), linear.to_bits(), "{name}");
            assert!(cells.is_finite());
        }
    }

    #[test]
    fn buried_target_counts_exceed_surface_counts() {
        let s = scorer();
        let lib = BenchmarkLibrary::standard();
        let builder = LoopBuilder::default();
        let count_sum = |name: &str| -> u32 {
            let target = lib.target_by_name(name).unwrap();
            let native = target.build(&builder, &target.native_torsions);
            let mut scratch = ScoreScratch::new();
            s.counts_with(&target, &native, &mut scratch);
            scratch.burial_counts().iter().sum()
        };
        assert!(
            count_sum("1xyz") > count_sum("1cex"),
            "the buried 1xyz loop should see more environment contacts"
        );
    }

    #[test]
    fn score_is_deterministic_and_trait_path_agrees() {
        let s = scorer();
        let lib = BenchmarkLibrary::standard();
        let target = lib.target_by_name("1dim").unwrap();
        let builder = LoopBuilder::default();
        let native = target.build(&builder, &target.native_torsions);
        let a = s.score(&target, &native, &target.native_torsions);
        let b = s.score(&target, &native, &target.native_torsions);
        assert_eq!(a, b);
        let mut scratch = ScoreScratch::new();
        assert_eq!(
            a,
            s.score_with(&target, &native, &target.native_torsions, &mut scratch)
        );
    }

    #[test]
    fn empty_environment_scores_full_exposure() {
        let s = scorer();
        let lib = BenchmarkLibrary::standard();
        let donor = lib.target_by_name("1cex").unwrap();
        let target = lms_protein::LoopTarget {
            environment: std::sync::Arc::new(lms_protein::Environment::empty()),
            env_cache: Default::default(),
            ..donor.clone()
        };
        let builder = LoopBuilder::default();
        let native = target.build(&builder, &target.native_torsions);
        let mut scratch = ScoreScratch::new();
        s.counts_with(&target, &native, &mut scratch);
        assert!(scratch.burial_counts().iter().all(|&c| c == 0));
        let score = s.score_target_with(&target, &native, &mut scratch);
        assert_eq!(score, s.score_target_linear(&target, &native));
    }
}
