//! # lms-scoring
//!
//! The backbone scoring functions: the paper's three objectives —
//! soft-sphere van der Waals (VDW), atom pair-wise distance (DIST) and
//! triplet torsion-angle statistics (TRIPLET) — plus the opt-in
//! solvation/burial contact-number objective (BURIAL), together with the
//! synthetic knowledge base the knowledge-based potentials are derived
//! from, a combined [`MultiScorer`], and score-normalisation utilities.
//!
//! The objective set is sized by [`NUM_OBJECTIVES`] and enumerated by
//! [`Objective`]; a [`ScoreVector`] carries one slot per objective.  With
//! the BURIAL objective disabled (the default), its slot stays at exactly
//! `0.0` and every kernel, comparison and normalisation reduces
//! bit-identically to the three-objective pipeline.  Enabled (see
//! [`MultiScorer::with_burial`]), the VDW environment pass piggybacks the
//! per-residue contact counts on its cell-list gathers, so the fourth
//! objective costs one extra distance filter per Cα site instead of a
//! second environment sweep (property-tested in
//! `tests/burial_equivalence.rs`).
//!
//! ## The workspace API and the allocation-free invariant
//!
//! Scoring runs once per conformation per iteration — millions of times per
//! trajectory — so the hot path must not touch the allocator.  Every scoring
//! function therefore has two entry points:
//!
//! * [`ScoringFunction::score_with`] (and [`MultiScorer::evaluate_with`]):
//!   the primary, zero-allocation path.  The caller owns a [`ScoreScratch`]
//!   whose structure-of-arrays buffers (split x/y/z coordinates, radii,
//!   atom kinds, residue classes) are `clear()`ed and refilled per
//!   evaluation.  After one warm-up call per loop length, **no
//!   `score_with`/`evaluate_with` call allocates** — this invariant is
//!   enforced by a counting-allocator test in `lms-core`
//!   (`tests/zero_alloc.rs`) and by the equivalence property tests in this
//!   crate (`tests/workspace_equivalence.rs`).
//! * [`ScoringFunction::score`] (and [`MultiScorer::evaluate`]): thin
//!   wrappers that allocate a throwaway scratch and delegate to the
//!   workspace path.  Because both paths run the identical kernel, they
//!   return **bit-identical** values.
//!
//! The environment half of the VDW kernel additionally relies on the
//! per-target environment-neighbour cache
//! (`LoopTarget::env_candidates`): the fixed-environment atoms reachable
//! from the loop region are collected once per target into a flat SoA
//! candidate set with a CSR cell list over it.  Per-evaluation scoring
//! queries only the cells within each site's contact reach — O(local
//! density) per site instead of O(all candidates) — gathering indices into
//! a scratch-owned buffer and sorting them back to ascending order so the
//! accumulation is bit-identical to the exhaustive linear scan (kept as
//! [`VdwScore::environment_term_linear`] and property-tested in
//! `tests/cell_list_equivalence.rs`).
//!
//! ## Quick example
//!
//! ```
//! use lms_protein::{BenchmarkLibrary, LoopBuilder};
//! use lms_scoring::{KnowledgeBase, KnowledgeBaseConfig, MultiScorer};
//!
//! let kb = KnowledgeBase::build(KnowledgeBaseConfig::fast());
//! let scorer = MultiScorer::new(kb);
//! let target = BenchmarkLibrary::standard().target_by_name("1cex").unwrap();
//! let builder = LoopBuilder::default();
//! let native = target.build(&builder, &target.native_torsions);
//! let scores = scorer.evaluate(&target, &native, &target.native_torsions);
//! assert!(scores.is_finite());
//! ```

#![warn(missing_docs)]

pub mod burial;
pub mod dist;
pub mod library;
pub mod multi;
pub mod normalize;
pub mod pool;
pub mod traits;
pub mod triplet;
pub mod vdw;
pub mod workspace;

pub use burial::{BurialScore, BURIAL_RADIUS};
pub use dist::DistScore;
pub use library::{
    burial_bin, distance_bin, torsion_bin, BackboneAtomKind, BurialTable, DistTable, KnowledgeBase,
    KnowledgeBaseConfig, SeparationClass, TripletTable, BURIAL_BINS, BURIAL_BIN_WIDTH, DIST_BINS,
    DIST_BIN_WIDTH, DIST_MAX, TRIPLET_BINS,
};
pub use multi::MultiScorer;
pub use normalize::{normalize_population, ScoreRange};
pub use pool::ScratchPool;
pub use traits::{Objective, ScoreVector, ScoringFunction, NUM_OBJECTIVES};
pub use triplet::TripletScore;
pub use vdw::{ContactWeights, VdwRadii, VdwScore};
pub use workspace::ScoreScratch;
