//! # lms-scoring
//!
//! The three backbone scoring functions of the paper — soft-sphere van der
//! Waals (VDW), atom pair-wise distance (DIST) and triplet torsion-angle
//! statistics (TRIPLET) — together with the synthetic knowledge base the
//! two knowledge-based potentials are derived from, a combined
//! [`MultiScorer`], and score-normalisation utilities.
//!
//! ## Quick example
//!
//! ```
//! use lms_protein::{BenchmarkLibrary, LoopBuilder};
//! use lms_scoring::{KnowledgeBase, KnowledgeBaseConfig, MultiScorer};
//!
//! let kb = KnowledgeBase::build(KnowledgeBaseConfig::fast());
//! let scorer = MultiScorer::new(kb);
//! let target = BenchmarkLibrary::standard().target_by_name("1cex").unwrap();
//! let builder = LoopBuilder::default();
//! let native = target.build(&builder, &target.native_torsions);
//! let scores = scorer.evaluate(&target, &native, &target.native_torsions);
//! assert!(scores.is_finite());
//! ```

#![warn(missing_docs)]

pub mod dist;
pub mod library;
pub mod multi;
pub mod normalize;
pub mod traits;
pub mod triplet;
pub mod vdw;

pub use dist::DistScore;
pub use library::{
    distance_bin, torsion_bin, BackboneAtomKind, DistTable, KnowledgeBase, KnowledgeBaseConfig,
    SeparationClass, TripletTable, DIST_BINS, DIST_BIN_WIDTH, DIST_MAX, TRIPLET_BINS,
};
pub use multi::MultiScorer;
pub use normalize::{normalize_population, ScoreRange};
pub use traits::{Objective, ScoreVector, ScoringFunction, NUM_OBJECTIVES};
pub use triplet::TripletScore;
pub use vdw::{ContactWeights, VdwRadii, VdwScore};
