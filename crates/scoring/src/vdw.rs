//! The VDW (soft-sphere van der Waals) scoring function.
//!
//! "The soft-sphere van der Waals scoring function estimates the degree of
//! clashes among the loop residues as well as the potential clashes between
//! the loop residues and the residues in the rest of the protein by
//! calculating the atom-atom, atom-centroid, and centroid-centroid
//! distances."  (Paper, §III.B; potential form after Zhang et al. 1997.)
//!
//! Overlapping soft spheres contribute a quadratic penalty
//! `((σ − d)/σ)²` where σ is the sum of the two radii; non-overlapping
//! pairs contribute nothing.  Contacts are evaluated
//!
//! * between all loop backbone atoms / centroids at residue separation ≥ 2
//!   (intra-loop clashes), and
//! * between every loop atom / centroid and the fixed environment atoms
//!   within a cutoff, using the environment's spatial grid.

use crate::traits::ScoringFunction;
use lms_protein::{Environment, LoopStructure, LoopTarget, Torsions};
use lms_geometry::Vec3;

/// Soft-sphere radii (Å) of the backbone heavy atoms.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VdwRadii {
    /// Amide nitrogen.
    pub n: f64,
    /// Alpha carbon.
    pub ca: f64,
    /// Carbonyl carbon.
    pub c: f64,
    /// Carbonyl oxygen.
    pub o: f64,
    /// Softness factor applied to every radius sum (1.0 = hard spheres,
    /// smaller = softer).
    pub softness: f64,
}

impl Default for VdwRadii {
    fn default() -> Self {
        VdwRadii { n: 1.55, ca: 1.70, c: 1.70, o: 1.40, softness: 0.90 }
    }
}

/// Relative weights of the three contact categories.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ContactWeights {
    /// Backbone-atom / backbone-atom contacts.
    pub atom_atom: f64,
    /// Backbone-atom / side-chain-centroid contacts.
    pub atom_centroid: f64,
    /// Centroid / centroid contacts.
    pub centroid_centroid: f64,
}

impl Default for ContactWeights {
    fn default() -> Self {
        ContactWeights { atom_atom: 1.0, atom_centroid: 0.5, centroid_centroid: 0.25 }
    }
}

/// Soft-sphere van der Waals clash score.
#[derive(Debug, Clone)]
pub struct VdwScore {
    radii: VdwRadii,
    weights: ContactWeights,
    /// Neighbour-query cutoff (Å); must exceed the largest possible radius
    /// sum so no overlapping pair is missed.
    cutoff: f64,
}

impl Default for VdwScore {
    fn default() -> Self {
        VdwScore::new(VdwRadii::default(), ContactWeights::default())
    }
}

impl VdwScore {
    /// Create a scorer with explicit radii and contact weights.
    pub fn new(radii: VdwRadii, weights: ContactWeights) -> Self {
        // Largest centroid radius is ~3.2 A (Trp); largest backbone radius
        // 1.7 A; 3.2 + 3.2 = 6.4 A bounds every radius sum.
        VdwScore { radii, weights, cutoff: 7.0 }
    }

    /// The radii in use.
    pub fn radii(&self) -> &VdwRadii {
        &self.radii
    }

    fn overlap_penalty(&self, d: f64, sigma: f64) -> f64 {
        let sigma = sigma * self.radii.softness;
        if d >= sigma || sigma <= 0.0 {
            0.0
        } else {
            let x = (sigma - d) / sigma;
            x * x
        }
    }

    /// Collect the loop's interaction sites: backbone atoms with their
    /// radii and residue index, plus centroid pseudo-atoms.
    fn loop_sites(&self, target: &LoopTarget, structure: &LoopStructure) -> Vec<(Vec3, f64, usize, bool)> {
        let r = &self.radii;
        let mut sites = Vec::with_capacity(structure.n_residues() * 5);
        for (i, res) in structure.residues.iter().enumerate() {
            sites.push((res.n, r.n, i, false));
            sites.push((res.ca, r.ca, i, false));
            sites.push((res.c, r.c, i, false));
            sites.push((res.o, r.o, i, false));
            if let Some(c) = res.centroid {
                sites.push((c, target.sequence[i].centroid_radius(), i, true));
            }
        }
        sites
    }

    /// Intra-loop clash contribution.
    fn intra_loop(&self, sites: &[(Vec3, f64, usize, bool)]) -> f64 {
        let mut total = 0.0;
        for (a_idx, &(pa, ra, ia, ca)) in sites.iter().enumerate() {
            for &(pb, rb, ib, cb) in &sites[(a_idx + 1)..] {
                // Residues closer than 2 apart in sequence are covalently
                // coupled; their short contacts are not clashes.
                if ib.abs_diff(ia) < 2 {
                    continue;
                }
                let w = match (ca, cb) {
                    (false, false) => self.weights.atom_atom,
                    (true, true) => self.weights.centroid_centroid,
                    _ => self.weights.atom_centroid,
                };
                total += w * self.overlap_penalty(pa.distance(pb), ra + rb);
            }
        }
        total
    }

    /// Loop-to-environment clash contribution.
    fn against_environment(&self, sites: &[(Vec3, f64, usize, bool)], env: &Environment) -> f64 {
        let mut total = 0.0;
        for &(p, r, _i, is_centroid) in sites {
            env.for_each_within(p, self.cutoff, |atom| {
                let w = match (is_centroid, atom.is_centroid) {
                    (false, false) => self.weights.atom_atom,
                    (true, true) => self.weights.centroid_centroid,
                    _ => self.weights.atom_centroid,
                };
                total += w * self.overlap_penalty(p.distance(atom.position), r + atom.radius);
            });
        }
        total
    }

    /// Score a structure in the context of a target (needed for the residue
    /// types and the environment).
    pub fn score_target(&self, target: &LoopTarget, structure: &LoopStructure) -> f64 {
        let sites = self.loop_sites(target, structure);
        let intra = self.intra_loop(&sites);
        let inter = self.against_environment(&sites, &target.environment);
        (intra + inter) / structure.n_residues() as f64
    }
}

impl ScoringFunction for VdwScore {
    fn name(&self) -> &'static str {
        "VDW"
    }

    fn score(&self, target: &LoopTarget, structure: &LoopStructure, _torsions: &Torsions) -> f64 {
        self.score_target(target, structure)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lms_geometry::deg_to_rad;
    use lms_protein::{BenchmarkLibrary, LoopBuilder, Torsions};

    #[test]
    fn name_is_vdw() {
        assert_eq!(VdwScore::default().name(), "VDW");
    }

    #[test]
    fn overlap_penalty_shape() {
        let s = VdwScore::default();
        let sigma = 3.0;
        // No penalty at or beyond the (softened) radius sum.
        assert_eq!(s.overlap_penalty(3.0, sigma), 0.0);
        assert_eq!(s.overlap_penalty(2.8, sigma), 0.0);
        // Penalty grows monotonically as the overlap deepens.
        let p1 = s.overlap_penalty(2.5, sigma);
        let p2 = s.overlap_penalty(2.0, sigma);
        let p3 = s.overlap_penalty(1.0, sigma);
        assert!(p1 > 0.0);
        assert!(p2 > p1);
        assert!(p3 > p2);
        // Degenerate sigma contributes nothing rather than NaN.
        assert_eq!(s.overlap_penalty(1.0, 0.0), 0.0);
    }

    #[test]
    fn native_scores_better_than_clashing_conformation() {
        let s = VdwScore::default();
        let lib = BenchmarkLibrary::standard();
        let target = lib.target_by_name("1cex").unwrap();
        let builder = LoopBuilder::default();
        let native = target.build(&builder, &target.native_torsions);
        let native_score = s.score_target(&target, &native);

        // All-zero torsions coil the loop into itself.
        let clash_t = Torsions::zeros(target.n_residues());
        let clashing = target.build(&builder, &clash_t);
        let clash_score = s.score_target(&target, &clashing);
        assert!(
            native_score < clash_score,
            "native {native_score} should beat clashing {clash_score}"
        );
    }

    #[test]
    fn buried_target_penalises_even_reasonable_conformations() {
        // The buried 1xyz target has a dense, close environment shell; an
        // arbitrary (but internally clash-free) alpha-helical conformation
        // should pick up more environment overlap than on a surface loop.
        let s = VdwScore::default();
        let lib = BenchmarkLibrary::standard();
        let buried = lib.target_by_name("1xyz").unwrap();
        let surface = lib.target_by_name("1cex").unwrap();
        let builder = LoopBuilder::default();
        let torsions = |n: usize| {
            Torsions::from_pairs(&vec![(deg_to_rad(-63.0), deg_to_rad(-43.0)); n])
        };
        let b = s.score_target(&buried, &buried.build(&builder, &torsions(buried.n_residues())));
        let srf = s.score_target(&surface, &surface.build(&builder, &torsions(surface.n_residues())));
        assert!(b > srf, "buried {b} should exceed surface {srf}");
    }

    #[test]
    fn score_is_deterministic_and_finite() {
        let s = VdwScore::default();
        let lib = BenchmarkLibrary::standard();
        let target = lib.target_by_name("5pti").unwrap();
        let builder = LoopBuilder::default();
        let native = target.build(&builder, &target.native_torsions);
        let a = s.score_target(&target, &native);
        let b = s.score_target(&target, &native);
        assert_eq!(a, b);
        assert!(a.is_finite());
        assert!(a >= 0.0, "soft-sphere penalties are non-negative");
    }

    #[test]
    fn weights_scale_the_contributions() {
        let lib = BenchmarkLibrary::standard();
        let target = lib.target_by_name("1dim").unwrap();
        let builder = LoopBuilder::default();
        let clash_t = Torsions::zeros(target.n_residues());
        let clashing = target.build(&builder, &clash_t);

        let base = VdwScore::default().score_target(&target, &clashing);
        let doubled = VdwScore::new(
            VdwRadii::default(),
            ContactWeights { atom_atom: 2.0, atom_centroid: 1.0, centroid_centroid: 0.5 },
        )
        .score_target(&target, &clashing);
        assert!((doubled - 2.0 * base).abs() < 1e-9, "doubling weights doubles the score");
    }

    #[test]
    fn harder_spheres_raise_the_score() {
        let lib = BenchmarkLibrary::standard();
        let target = lib.target_by_name("153l").unwrap();
        let builder = LoopBuilder::default();
        let clash_t = Torsions::zeros(target.n_residues());
        let clashing = target.build(&builder, &clash_t);
        let soft = VdwScore::new(
            VdwRadii { softness: 0.8, ..VdwRadii::default() },
            ContactWeights::default(),
        )
        .score_target(&target, &clashing);
        let hard = VdwScore::new(
            VdwRadii { softness: 1.0, ..VdwRadii::default() },
            ContactWeights::default(),
        )
        .score_target(&target, &clashing);
        assert!(hard > soft);
    }
}
