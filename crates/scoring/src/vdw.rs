//! The VDW (soft-sphere van der Waals) scoring function.
//!
//! "The soft-sphere van der Waals scoring function estimates the degree of
//! clashes among the loop residues as well as the potential clashes between
//! the loop residues and the residues in the rest of the protein by
//! calculating the atom-atom, atom-centroid, and centroid-centroid
//! distances."  (Paper, §III.B; potential form after Zhang et al. 1997.)
//!
//! Overlapping soft spheres contribute a quadratic penalty
//! `((σ − d)/σ)²` where σ is the sum of the two radii; non-overlapping
//! pairs contribute nothing.  Contacts are evaluated
//!
//! * between all loop backbone atoms / centroids at residue separation ≥ 2
//!   (intra-loop clashes), and
//! * between every loop atom / centroid and the fixed environment atoms
//!   within a cutoff, queried through the per-target candidate cell list
//!   ([`EnvCandidates::gather_within`]) so each site pays O(local density)
//!   rather than O(all candidates).  Production scoring batches the queries
//!   into **per-residue candidate windows**: one gather per residue,
//!   centred on its Cα with a radius covering every site's own contact
//!   reach, sorted once and shared by all of the residue's ~5 sites (each
//!   site keeps its exact d²/σ² filter).  Gathered indices are always
//!   sorted back into ascending order before accumulation, which restores
//!   the exhaustive linear scan's floating-point summation order — the
//!   window pass, the per-site pass
//!   ([`VdwScore::environment_term_per_site`]) and the linear scan
//!   ([`VdwScore::environment_term_linear`]) are all bit-identical
//!   (property-tested in `tests/cell_list_equivalence.rs`).

use crate::traits::ScoringFunction;
use crate::workspace::ScoreScratch;
use lms_geometry::Vec3;
use lms_protein::{EnvCandidates, LoopStructure, LoopTarget, Torsions};

/// Soft-sphere radii (Å) of the backbone heavy atoms.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VdwRadii {
    /// Amide nitrogen.
    pub n: f64,
    /// Alpha carbon.
    pub ca: f64,
    /// Carbonyl carbon.
    pub c: f64,
    /// Carbonyl oxygen.
    pub o: f64,
    /// Softness factor applied to every radius sum (1.0 = hard spheres,
    /// smaller = softer).
    pub softness: f64,
}

impl Default for VdwRadii {
    fn default() -> Self {
        VdwRadii {
            n: 1.55,
            ca: 1.70,
            c: 1.70,
            o: 1.40,
            softness: 0.90,
        }
    }
}

/// Relative weights of the three contact categories.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ContactWeights {
    /// Backbone-atom / backbone-atom contacts.
    pub atom_atom: f64,
    /// Backbone-atom / side-chain-centroid contacts.
    pub atom_centroid: f64,
    /// Centroid / centroid contacts.
    pub centroid_centroid: f64,
}

impl Default for ContactWeights {
    fn default() -> Self {
        ContactWeights {
            atom_atom: 1.0,
            atom_centroid: 0.5,
            centroid_centroid: 0.25,
        }
    }
}

/// Soft-sphere van der Waals clash score.
#[derive(Debug, Clone)]
pub struct VdwScore {
    radii: VdwRadii,
    weights: ContactWeights,
    /// Neighbour-query cutoff (Å); must exceed the largest possible radius
    /// sum so no overlapping pair is missed.
    cutoff: f64,
    /// Whether the contact passes stage their d² computations through the
    /// wide (SIMD) distance kernel.
    wide: bool,
}

impl Default for VdwScore {
    fn default() -> Self {
        VdwScore::new(VdwRadii::default(), ContactWeights::default())
    }
}

impl VdwScore {
    /// Create a scorer with explicit radii and contact weights.
    pub fn new(radii: VdwRadii, weights: ContactWeights) -> Self {
        // Largest centroid radius is ~3.2 A (Trp); largest backbone radius
        // 1.7 A; 3.2 + 3.2 = 6.4 A bounds every radius sum.
        VdwScore {
            radii,
            weights,
            cutoff: 7.0,
            wide: false,
        }
    }

    /// Enable explicit wide-`f64` lanes in the contact distance passes: the
    /// per-candidate d² values are computed four lanes at a time into a
    /// staging buffer, then consumed by the unchanged scalar-order
    /// accumulation loop — early-outs, Cα-table stores and summation order
    /// are preserved exactly, so scores are bit-identical to the scalar
    /// path.  Without the `simd` cargo feature this is a no-op.
    #[must_use]
    pub fn with_wide_lanes(mut self, wide: bool) -> Self {
        self.wide = wide;
        self
    }

    /// Whether the contact passes use the wide distance kernel.
    pub fn wide_lanes(&self) -> bool {
        self.wide
    }

    /// The radii in use.
    pub fn radii(&self) -> &VdwRadii {
        &self.radii
    }

    /// The neighbour-query cutoff (Å).  The environment candidate cache is
    /// built with a reach margin at least this large, so the linear SoA
    /// scan sees every atom a grid query within `cutoff` would see.
    pub fn cutoff(&self) -> f64 {
        self.cutoff
    }

    fn overlap_penalty(&self, d: f64, sigma: f64) -> f64 {
        let sigma = sigma * self.radii.softness;
        if d >= sigma || sigma <= 0.0 {
            0.0
        } else {
            let x = (sigma - d) / sigma;
            x * x
        }
    }

    /// Stage the loop's interaction sites into the scratch SoA buffers:
    /// backbone atoms with their radii and residue index, plus centroid
    /// pseudo-atoms.  `clear` + `push` only — no allocation after warm-up.
    fn fill_sites(
        &self,
        target: &LoopTarget,
        structure: &LoopStructure,
        scratch: &mut ScoreScratch,
    ) {
        let r = &self.radii;
        scratch.clear();
        for (i, res) in structure.residues.iter().enumerate() {
            for (k, (p, radius)) in [(res.n, r.n), (res.ca, r.ca), (res.c, r.c), (res.o, r.o)]
                .into_iter()
                .enumerate()
            {
                scratch.site_x.push(p.x);
                scratch.site_y.push(p.y);
                scratch.site_z.push(p.z);
                scratch.site_r.push(radius);
                scratch.site_res.push(i as u32);
                scratch.site_centroid.push(false);
                scratch.site_is_ca.push(k == 1);
            }
            if let Some(c) = res.centroid {
                scratch.site_x.push(c.x);
                scratch.site_y.push(c.y);
                scratch.site_z.push(c.z);
                scratch.site_r.push(target.sequence[i].centroid_radius());
                scratch.site_res.push(i as u32);
                scratch.site_centroid.push(true);
                scratch.site_is_ca.push(false);
            }
        }
    }

    #[inline(always)]
    fn contact_weight(&self, a_centroid: bool, b_centroid: bool) -> f64 {
        match (a_centroid, b_centroid) {
            (false, false) => self.weights.atom_atom,
            (true, true) => self.weights.centroid_centroid,
            _ => self.weights.atom_centroid,
        }
    }

    /// Intra-loop clash contribution over the staged SoA sites.
    ///
    /// While walking the site pairs this pass also records every Cα–Cα
    /// squared distance it computes (residue separation ≥ 2 — exactly the
    /// pairs the DIST kernel scores) into the scratch's shared `ca_d2`
    /// table, so the DIST Cα–Cα bounding check becomes a table read instead
    /// of a recomputation: one staging of the Cα coordinates serves VDW,
    /// BURIAL and DIST.  The stores happen before the overlap early-out and
    /// never change the clash sum.
    fn intra_loop(&self, s: &mut ScoreScratch, n_residues: usize) -> f64 {
        s.ca_d2.clear();
        s.ca_d2.resize(n_residues * n_residues, f64::INFINITY);
        s.ca_d2_staged = true;
        let n = s.site_x.len();
        let mut total = 0.0;
        for a in 0..n {
            let (xa, ya, za) = (s.site_x[a], s.site_y[a], s.site_z[a]);
            let (ra, ia, ca) = (s.site_r[a], s.site_res[a], s.site_centroid[a]);
            let a_is_ca = s.site_is_ca[a];
            for b in (a + 1)..n {
                // Residues closer than 2 apart in sequence are covalently
                // coupled; their short contacts are not clashes.
                if s.site_res[b].abs_diff(ia) < 2 {
                    continue;
                }
                let dx = xa - s.site_x[b];
                let dy = ya - s.site_y[b];
                let dz = za - s.site_z[b];
                let d2 = dx * dx + dy * dy + dz * dz;
                if a_is_ca && s.site_is_ca[b] {
                    // Sites are staged in residue order, so `a` is the
                    // earlier residue: the stored value is bit-identical to
                    // what DIST's own Cα bound computation would produce.
                    s.ca_d2[ia as usize * n_residues + s.site_res[b] as usize] = d2;
                }
                let sigma = (ra + s.site_r[b]) * self.radii.softness;
                // Squared-distance early-out: pairs at or beyond the softened
                // radius sum contribute exactly 0, so skipping them before
                // the sqrt leaves the score bit-identical.
                if d2 >= sigma * sigma || sigma <= 0.0 {
                    continue;
                }
                total += self.contact_weight(ca, s.site_centroid[b])
                    * self.overlap_penalty(d2.sqrt(), ra + s.site_r[b]);
            }
        }
        total
    }

    /// Loop-to-environment clash contribution via an exhaustive linear scan
    /// of the target's precomputed SoA candidate set.  Candidates beyond
    /// overlap range contribute exactly 0, so the conservative candidate
    /// superset changes nothing but speed.  This is the *reference* path:
    /// production scoring goes through the per-residue window pass
    /// ([`VdwScore::against_environment_windows`]), which must (and does)
    /// reproduce this sum bit for bit.
    fn against_environment_linear(&self, s: &ScoreScratch, env: &EnvCandidates) -> f64 {
        let (ex, ey, ez) = (env.xs(), env.ys(), env.zs());
        let (er, ec) = (env.radii(), env.centroid_flags());
        let mut total = 0.0;
        for a in 0..s.site_x.len() {
            let (xa, ya, za) = (s.site_x[a], s.site_y[a], s.site_z[a]);
            let (ra, ca) = (s.site_r[a], s.site_centroid[a]);
            for b in 0..ex.len() {
                let dx = xa - ex[b];
                let dy = ya - ey[b];
                let dz = za - ez[b];
                let d2 = dx * dx + dy * dy + dz * dz;
                let sigma = (ra + er[b]) * self.radii.softness;
                if d2 >= sigma * sigma || sigma <= 0.0 {
                    continue;
                }
                total +=
                    self.contact_weight(ca, ec[b]) * self.overlap_penalty(d2.sqrt(), ra + er[b]);
            }
        }
        total
    }

    /// Loop-to-environment clash contribution via *per-site* candidate
    /// cell-list queries: each site gathers only the candidates in cells
    /// overlapping its contact reach `(rₐ + max_env_radius) · softness`, so
    /// per-site cost tracks *local* density instead of the total candidate
    /// count.  Kept as the comparison path for the per-residue window pass
    /// ([`VdwScore::against_environment_windows`]), which amortises the
    /// gather+sort over a residue's sites.
    ///
    /// Two details keep this bit-identical to
    /// [`VdwScore::against_environment_linear`]:
    /// * the gather is a superset of every candidate with a non-zero
    ///   penalty (any contributing pair has `d < σ ≤ reach`), and excluded
    ///   candidates contribute exactly 0;
    /// * gathered indices are sorted ascending before accumulation, so the
    ///   surviving contributions are summed in the linear scan's order.
    ///
    /// The index buffer lives in the scratch; its capacity is raised to the
    /// candidate count (the hard upper bound on any gather) on first use,
    /// after which queries never allocate.
    fn against_environment_cells(&self, s: &mut ScoreScratch, env: &EnvCandidates) -> f64 {
        if env.is_empty() {
            return 0.0;
        }
        if s.env_idx.capacity() < env.len() {
            // `reserve` takes an *additional* count on top of the current
            // length; clearing first makes it an absolute capacity floor,
            // so the guarantee holds even when a scratch warmed up on a
            // smaller target is reused on a larger one.
            s.env_idx.clear();
            s.env_idx.reserve(env.len());
        }
        let softness = self.radii.softness;
        let max_reach = env.max_radius();
        let mut total = 0.0;
        for a in 0..s.site_x.len() {
            let (xa, ya, za) = (s.site_x[a], s.site_y[a], s.site_z[a]);
            let (ra, ca) = (s.site_r[a], s.site_centroid[a]);
            s.env_idx.clear();
            env.gather_within(
                Vec3::new(xa, ya, za),
                (ra + max_reach) * softness,
                &mut s.env_idx,
            );
            s.env_idx.sort_unstable();
            let (ex, ey, ez) = (env.xs(), env.ys(), env.zs());
            let (er, ec) = (env.radii(), env.centroid_flags());
            for &b in &s.env_idx {
                let b = b as usize;
                let dx = xa - ex[b];
                let dy = ya - ey[b];
                let dz = za - ez[b];
                let d2 = dx * dx + dy * dy + dz * dz;
                let sigma = (ra + er[b]) * softness;
                if d2 >= sigma * sigma || sigma <= 0.0 {
                    continue;
                }
                total +=
                    self.contact_weight(ca, ec[b]) * self.overlap_penalty(d2.sqrt(), ra + er[b]);
            }
        }
        total
    }

    /// The production loop-to-environment pass, over **per-residue
    /// candidate windows**: one cell-list gather per residue, centred on
    /// its Cα with a radius covering every site's own contact reach
    /// (`|site − Cα| + (r_site + max_env_radius)·softness`, plus
    /// `burial_radius` when the BURIAL piggyback is enabled), sorted once
    /// and shared by all of the residue's ~5 sites.  This amortises the
    /// dominant gather + sort cost ~5× while each site keeps its exact
    /// d²/σ² filter.
    ///
    /// Bit-identity to the per-site pass (and hence the linear reference):
    /// * the window is a superset of each site's own gather — any
    ///   contributing candidate satisfies `d < σ ≤ reach`, so by the
    ///   triangle inequality it lies within `|site − Cα| + reach` of the
    ///   Cα, and [`WINDOW_SLACK`] absorbs the few-ulp rounding of that
    ///   bound;
    /// * superset membership is harmless — excluded or extra candidates
    ///   contribute exactly 0 to the penalty sum and pass through an exact
    ///   integer distance filter in the burial count, so only the
    ///   *surviving* pairs matter, and those are identical;
    /// * the window indices are sorted ascending once, so every site
    ///   accumulates its surviving contributions in the linear scan's
    ///   order.
    ///
    /// With `burial_radius = Some(r)`, each residue's environment contact
    /// count within `r` of its Cα is derived from the same window into
    /// `scratch.burial_counts` — the burial objective still costs one
    /// extra distance filter, not a second gather.  When wide lanes are
    /// enabled, the per-candidate d² staging and the burial count go
    /// through the wide kernels ([`stage_wide_d2_gather`],
    /// [`EnvCandidates::count_within_wide`]); per-lane IEEE arithmetic and
    /// integer counts keep both bit-identical to the scalar path.
    fn against_environment_windows(
        &self,
        s: &mut ScoreScratch,
        env: &EnvCandidates,
        n_residues: usize,
        burial_radius: Option<f64>,
    ) -> f64 {
        if burial_radius.is_some() {
            s.burial_counts.clear();
            s.burial_counts.resize(n_residues, 0);
        }
        if env.is_empty() {
            return 0.0;
        }
        if s.env_idx.capacity() < env.len() {
            s.env_idx.clear();
            s.env_idx.reserve(env.len());
        }
        // The wide d² staging buffer mirrors env_idx one-to-one; reserve it
        // to the same bound up front so an unusually large window appearing
        // after warm-up can never force a steady-state regrowth (the
        // zero-alloc invariant).
        if s.wide_d2.capacity() < env.len() {
            s.wide_d2.clear();
            s.wide_d2.reserve(env.len());
        }
        let softness = self.radii.softness;
        let max_reach = env.max_radius();
        let (ex, ey, ez) = (env.xs(), env.ys(), env.zs());
        let (er, ec) = (env.radii(), env.centroid_flags());
        let n = s.site_x.len();
        let mut total = 0.0;
        let mut start = 0;
        while start < n {
            let res = s.site_res[start];
            let mut end = start + 1;
            while end < n && s.site_res[end] == res {
                end += 1;
            }
            // The residue's Cα anchors the window (sites are staged
            // N, Cα, C', O[, centroid] — located by flag for robustness).
            let ca_i = (start..end)
                .find(|&a| s.site_is_ca[a])
                .expect("every residue stages a Cα site");
            let ca = Vec3::new(s.site_x[ca_i], s.site_y[ca_i], s.site_z[ca_i]);
            let mut window = burial_radius.unwrap_or(0.0);
            for a in start..end {
                let dx = s.site_x[a] - ca.x;
                let dy = s.site_y[a] - ca.y;
                let dz = s.site_z[a] - ca.z;
                let dist = (dx * dx + dy * dy + dz * dz).sqrt();
                let reach = (s.site_r[a] + max_reach) * softness;
                window = window.max(dist + reach);
            }
            s.env_idx.clear();
            env.gather_within(ca, window + WINDOW_SLACK, &mut s.env_idx);
            s.env_idx.sort_unstable();
            if let Some(r) = burial_radius {
                #[cfg(feature = "simd")]
                let count = if self.wide {
                    env.count_within_wide(ca, r, &s.env_idx)
                } else {
                    env.count_within(ca, r, &s.env_idx)
                };
                #[cfg(not(feature = "simd"))]
                let count = env.count_within(ca, r, &s.env_idx);
                s.burial_counts[res as usize] = count;
            }
            for a in start..end {
                let (xa, ya, za) = (s.site_x[a], s.site_y[a], s.site_z[a]);
                let (ra, a_centroid) = (s.site_r[a], s.site_centroid[a]);
                #[cfg(feature = "simd")]
                if self.wide {
                    stage_wide_d2_gather(&s.env_idx, ex, ey, ez, (xa, ya, za), &mut s.wide_d2);
                    for (g, &b) in s.env_idx.iter().enumerate() {
                        let b = b as usize;
                        let d2 = s.wide_d2[g];
                        let sigma = (ra + er[b]) * softness;
                        if d2 >= sigma * sigma || sigma <= 0.0 {
                            continue;
                        }
                        total += self.contact_weight(a_centroid, ec[b])
                            * self.overlap_penalty(d2.sqrt(), ra + er[b]);
                    }
                    continue;
                }
                for &b in &s.env_idx {
                    let b = b as usize;
                    let dx = xa - ex[b];
                    let dy = ya - ey[b];
                    let dz = za - ez[b];
                    let d2 = dx * dx + dy * dy + dz * dz;
                    let sigma = (ra + er[b]) * softness;
                    if d2 >= sigma * sigma || sigma <= 0.0 {
                        continue;
                    }
                    total += self.contact_weight(a_centroid, ec[b])
                        * self.overlap_penalty(d2.sqrt(), ra + er[b]);
                }
            }
            start = end;
        }
        total
    }

    /// Wide variant of [`VdwScore::intra_loop`]: the d² of every candidate
    /// pair of a row is staged four lanes at a time
    /// ([`stage_wide_d2_row`]), then the unchanged scalar accumulation loop
    /// (adjacency skip, Cα-table store, σ early-out, penalty sum) reads
    /// from the buffer.  Per pair the staged d² is computed by the same
    /// IEEE operations in the same association as the scalar expression,
    /// and the accumulation order is untouched — bit-identical.
    #[cfg(feature = "simd")]
    fn intra_loop_wide(&self, s: &mut ScoreScratch, n_residues: usize) -> f64 {
        s.ca_d2.clear();
        s.ca_d2.resize(n_residues * n_residues, f64::INFINITY);
        s.ca_d2_staged = true;
        let n = s.site_x.len();
        let mut total = 0.0;
        for a in 0..n {
            let (xa, ya, za) = (s.site_x[a], s.site_y[a], s.site_z[a]);
            let (ra, ia, ca) = (s.site_r[a], s.site_res[a], s.site_centroid[a]);
            let a_is_ca = s.site_is_ca[a];
            stage_wide_d2_row(
                &s.site_x[a + 1..],
                &s.site_y[a + 1..],
                &s.site_z[a + 1..],
                (xa, ya, za),
                &mut s.wide_d2,
            );
            for b in (a + 1)..n {
                // Residues closer than 2 apart in sequence are covalently
                // coupled; their short contacts are not clashes.
                if s.site_res[b].abs_diff(ia) < 2 {
                    continue;
                }
                let d2 = s.wide_d2[b - a - 1];
                if a_is_ca && s.site_is_ca[b] {
                    s.ca_d2[ia as usize * n_residues + s.site_res[b] as usize] = d2;
                }
                let sigma = (ra + s.site_r[b]) * self.radii.softness;
                if d2 >= sigma * sigma || sigma <= 0.0 {
                    continue;
                }
                total += self.contact_weight(ca, s.site_centroid[b])
                    * self.overlap_penalty(d2.sqrt(), ra + s.site_r[b]);
            }
        }
        total
    }

    /// Wide variant of [`VdwScore::against_environment_cells`]: the sorted
    /// gather's d² values are staged four lanes at a time
    /// ([`stage_wide_d2_gather`]), then consumed in the scalar loop's exact
    /// order — bit-identical.
    #[cfg(feature = "simd")]
    fn against_environment_cells_wide(&self, s: &mut ScoreScratch, env: &EnvCandidates) -> f64 {
        if env.is_empty() {
            return 0.0;
        }
        if s.env_idx.capacity() < env.len() {
            s.env_idx.clear();
            s.env_idx.reserve(env.len());
        }
        let softness = self.radii.softness;
        let max_reach = env.max_radius();
        let mut total = 0.0;
        for a in 0..s.site_x.len() {
            let (xa, ya, za) = (s.site_x[a], s.site_y[a], s.site_z[a]);
            let (ra, ca) = (s.site_r[a], s.site_centroid[a]);
            s.env_idx.clear();
            env.gather_within(
                Vec3::new(xa, ya, za),
                (ra + max_reach) * softness,
                &mut s.env_idx,
            );
            s.env_idx.sort_unstable();
            let (ex, ey, ez) = (env.xs(), env.ys(), env.zs());
            let (er, ec) = (env.radii(), env.centroid_flags());
            stage_wide_d2_gather(&s.env_idx, ex, ey, ez, (xa, ya, za), &mut s.wide_d2);
            for (g, &b) in s.env_idx.iter().enumerate() {
                let b = b as usize;
                let d2 = s.wide_d2[g];
                let sigma = (ra + er[b]) * softness;
                if d2 >= sigma * sigma || sigma <= 0.0 {
                    continue;
                }
                total +=
                    self.contact_weight(ca, ec[b]) * self.overlap_penalty(d2.sqrt(), ra + er[b]);
            }
        }
        total
    }

    /// Dispatch between the scalar and wide intra-loop passes.
    #[inline]
    fn intra_loop_dispatch(&self, s: &mut ScoreScratch, n_residues: usize) -> f64 {
        #[cfg(feature = "simd")]
        if self.wide {
            return self.intra_loop_wide(s, n_residues);
        }
        self.intra_loop(s, n_residues)
    }

    /// The loop-to-environment term of [`VdwScore::score_target_with`] in
    /// isolation, evaluated through per-residue candidate windows over the
    /// cell list (the production path).  Exposed so equivalence tests and
    /// benchmarks can compare it against
    /// [`VdwScore::environment_term_linear`] and
    /// [`VdwScore::environment_term_per_site`].
    pub fn environment_term(
        &self,
        target: &LoopTarget,
        structure: &LoopStructure,
        scratch: &mut ScoreScratch,
    ) -> f64 {
        self.fill_sites(target, structure, scratch);
        self.against_environment_windows(
            scratch,
            target.env_candidates(),
            structure.n_residues(),
            None,
        )
    }

    /// The same environment term via the original per-site gather
    /// discipline: one cell-list query + sort per interaction site instead
    /// of one per residue.  Kept as the comparison path for the window
    /// pass — the CCD benchmark tracks the window speedup against this,
    /// and the equivalence tests pin both to the linear reference.
    /// Honours [`VdwScore::with_wide_lanes`] like the production path.
    pub fn environment_term_per_site(
        &self,
        target: &LoopTarget,
        structure: &LoopStructure,
        scratch: &mut ScoreScratch,
    ) -> f64 {
        self.fill_sites(target, structure, scratch);
        #[cfg(feature = "simd")]
        if self.wide {
            return self.against_environment_cells_wide(scratch, target.env_candidates());
        }
        self.against_environment_cells(scratch, target.env_candidates())
    }

    /// The same environment term via the exhaustive linear SoA scan — the
    /// reference implementation the cell-list path must match bit for bit.
    pub fn environment_term_linear(
        &self,
        target: &LoopTarget,
        structure: &LoopStructure,
        scratch: &mut ScoreScratch,
    ) -> f64 {
        self.fill_sites(target, structure, scratch);
        self.against_environment_linear(scratch, target.env_candidates())
    }

    /// Score a structure in the context of a target (needed for the residue
    /// types and the environment), staging data in `scratch`.
    pub fn score_target_with(
        &self,
        target: &LoopTarget,
        structure: &LoopStructure,
        scratch: &mut ScoreScratch,
    ) -> f64 {
        // The candidate cache must cover everything a grid query within
        // `cutoff` would see; the reach margin guarantees that coupling.
        debug_assert!(
            self.cutoff <= lms_protein::ENV_CONTACT_MARGIN,
            "VDW cutoff {} exceeds the environment candidate margin {}",
            self.cutoff,
            lms_protein::ENV_CONTACT_MARGIN
        );
        self.fill_sites(target, structure, scratch);
        let intra = self.intra_loop_dispatch(scratch, structure.n_residues());
        let inter = self.against_environment_windows(
            scratch,
            target.env_candidates(),
            structure.n_residues(),
            None,
        );
        (intra + inter) / structure.n_residues() as f64
    }

    /// [`VdwScore::score_target_with`] with the environment term evaluated
    /// through the shared VDW + BURIAL pass: on return,
    /// `scratch.burial_counts` holds each residue's environment contact
    /// count within `burial_radius` of its Cα, derived from the same
    /// cell-list gathers the VDW sum consumed.  The returned VDW score is
    /// bit-identical to [`VdwScore::score_target_with`].
    pub fn score_target_with_burial(
        &self,
        target: &LoopTarget,
        structure: &LoopStructure,
        scratch: &mut ScoreScratch,
        burial_radius: f64,
    ) -> f64 {
        debug_assert!(
            self.cutoff <= lms_protein::ENV_CONTACT_MARGIN
                && burial_radius <= lms_protein::ENV_CONTACT_MARGIN,
            "query radii (VDW {}, burial {}) exceed the environment candidate margin {}",
            self.cutoff,
            burial_radius,
            lms_protein::ENV_CONTACT_MARGIN
        );
        self.fill_sites(target, structure, scratch);
        let intra = self.intra_loop_dispatch(scratch, structure.n_residues());
        let inter = self.against_environment_windows(
            scratch,
            target.env_candidates(),
            structure.n_residues(),
            Some(burial_radius),
        );
        (intra + inter) / structure.n_residues() as f64
    }

    /// Allocating convenience wrapper over [`VdwScore::score_target_with`].
    pub fn score_target(&self, target: &LoopTarget, structure: &LoopStructure) -> f64 {
        let mut scratch = ScoreScratch::new();
        self.score_target_with(target, structure, &mut scratch)
    }
}

/// Slack (Å) added to each per-residue window radius so floating-point
/// rounding in the `|site − Cα| + reach` covering bound can never exclude a
/// contributing candidate.  Orders of magnitude above the few-ulp rounding
/// error of the bound at protein scales, and harmless when over-generous:
/// extra candidates are removed by the exact d²/σ² filter and the exact
/// burial distance filter, so the scores stay bit-identical.
const WINDOW_SLACK: f64 = 1e-9;

/// Stage the squared distances from one probe point to a contiguous run of
/// SoA sites, four lanes at a time with a scalar tail, into `out`
/// (`out[i]` = d² to `xs[i]`).  Each lane performs the scalar expression
/// `dx*dx + dy*dy + dz*dz` with the same IEEE operations and association,
/// so every staged value is bit-identical to the scalar loop's.
#[cfg(feature = "simd")]
#[inline]
fn stage_wide_d2_row(
    xs: &[f64],
    ys: &[f64],
    zs: &[f64],
    (xa, ya, za): (f64, f64, f64),
    out: &mut Vec<f64>,
) {
    use wide::f64x4;
    const W: usize = f64x4::LANES;
    let n = xs.len();
    out.clear();
    if out.capacity() < n {
        out.reserve(n);
    }
    let (sx, sy, sz) = (f64x4::splat(xa), f64x4::splat(ya), f64x4::splat(za));
    let chunks = n / W;
    for c in 0..chunks {
        let base = c * W;
        let dx = sx - f64x4::from_slice(&xs[base..]);
        let dy = sy - f64x4::from_slice(&ys[base..]);
        let dz = sz - f64x4::from_slice(&zs[base..]);
        let d2 = dx * dx + dy * dy + dz * dz;
        out.extend_from_slice(&d2.to_array());
    }
    for b in chunks * W..n {
        let dx = xa - xs[b];
        let dy = ya - ys[b];
        let dz = za - zs[b];
        out.push(dx * dx + dy * dy + dz * dz);
    }
}

/// [`stage_wide_d2_row`] over a gathered index list: `out[g]` = d² from the
/// probe to candidate `idx[g]`.  The scattered loads are transposed into
/// wide registers; the arithmetic per lane is identical to the scalar
/// expression.
#[cfg(feature = "simd")]
#[inline]
fn stage_wide_d2_gather(
    idx: &[u32],
    ex: &[f64],
    ey: &[f64],
    ez: &[f64],
    (xa, ya, za): (f64, f64, f64),
    out: &mut Vec<f64>,
) {
    use wide::f64x4;
    const W: usize = f64x4::LANES;
    let n = idx.len();
    out.clear();
    if out.capacity() < n {
        out.reserve(n);
    }
    let (sx, sy, sz) = (f64x4::splat(xa), f64x4::splat(ya), f64x4::splat(za));
    let chunks = n / W;
    for c in 0..chunks {
        let base = c * W;
        let i = [
            idx[base] as usize,
            idx[base + 1] as usize,
            idx[base + 2] as usize,
            idx[base + 3] as usize,
        ];
        let dx = sx - f64x4::from_array([ex[i[0]], ex[i[1]], ex[i[2]], ex[i[3]]]);
        let dy = sy - f64x4::from_array([ey[i[0]], ey[i[1]], ey[i[2]], ey[i[3]]]);
        let dz = sz - f64x4::from_array([ez[i[0]], ez[i[1]], ez[i[2]], ez[i[3]]]);
        let d2 = dx * dx + dy * dy + dz * dz;
        out.extend_from_slice(&d2.to_array());
    }
    for &i in &idx[chunks * W..n] {
        let b = i as usize;
        let dx = xa - ex[b];
        let dy = ya - ey[b];
        let dz = za - ez[b];
        out.push(dx * dx + dy * dy + dz * dz);
    }
}

impl ScoringFunction for VdwScore {
    fn name(&self) -> &'static str {
        "VDW"
    }

    fn score_with(
        &self,
        target: &LoopTarget,
        structure: &LoopStructure,
        _torsions: &Torsions,
        scratch: &mut ScoreScratch,
    ) -> f64 {
        self.score_target_with(target, structure, scratch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lms_geometry::deg_to_rad;
    use lms_protein::{BenchmarkLibrary, LoopBuilder, Torsions};

    #[test]
    fn name_is_vdw() {
        assert_eq!(VdwScore::default().name(), "VDW");
    }

    #[test]
    fn overlap_penalty_shape() {
        let s = VdwScore::default();
        let sigma = 3.0;
        // No penalty at or beyond the (softened) radius sum.
        assert_eq!(s.overlap_penalty(3.0, sigma), 0.0);
        assert_eq!(s.overlap_penalty(2.8, sigma), 0.0);
        // Penalty grows monotonically as the overlap deepens.
        let p1 = s.overlap_penalty(2.5, sigma);
        let p2 = s.overlap_penalty(2.0, sigma);
        let p3 = s.overlap_penalty(1.0, sigma);
        assert!(p1 > 0.0);
        assert!(p2 > p1);
        assert!(p3 > p2);
        // Degenerate sigma contributes nothing rather than NaN.
        assert_eq!(s.overlap_penalty(1.0, 0.0), 0.0);
    }

    #[test]
    fn native_scores_better_than_clashing_conformation() {
        let s = VdwScore::default();
        let lib = BenchmarkLibrary::standard();
        let target = lib.target_by_name("1cex").unwrap();
        let builder = LoopBuilder::default();
        let native = target.build(&builder, &target.native_torsions);
        let native_score = s.score_target(&target, &native);

        // All-zero torsions coil the loop into itself.
        let clash_t = Torsions::zeros(target.n_residues());
        let clashing = target.build(&builder, &clash_t);
        let clash_score = s.score_target(&target, &clashing);
        assert!(
            native_score < clash_score,
            "native {native_score} should beat clashing {clash_score}"
        );
    }

    #[test]
    fn buried_target_penalises_even_reasonable_conformations() {
        // The buried 1xyz target has a dense, close environment shell; an
        // arbitrary (but internally clash-free) alpha-helical conformation
        // should pick up more environment overlap than on a surface loop.
        let s = VdwScore::default();
        let lib = BenchmarkLibrary::standard();
        let buried = lib.target_by_name("1xyz").unwrap();
        let surface = lib.target_by_name("1cex").unwrap();
        let builder = LoopBuilder::default();
        let torsions =
            |n: usize| Torsions::from_pairs(&vec![(deg_to_rad(-63.0), deg_to_rad(-43.0)); n]);
        let b = s.score_target(
            &buried,
            &buried.build(&builder, &torsions(buried.n_residues())),
        );
        let srf = s.score_target(
            &surface,
            &surface.build(&builder, &torsions(surface.n_residues())),
        );
        assert!(b > srf, "buried {b} should exceed surface {srf}");
    }

    #[test]
    fn score_is_deterministic_and_finite() {
        let s = VdwScore::default();
        let lib = BenchmarkLibrary::standard();
        let target = lib.target_by_name("5pti").unwrap();
        let builder = LoopBuilder::default();
        let native = target.build(&builder, &target.native_torsions);
        let a = s.score_target(&target, &native);
        let b = s.score_target(&target, &native);
        assert_eq!(a, b);
        assert!(a.is_finite());
        assert!(a >= 0.0, "soft-sphere penalties are non-negative");
    }

    #[test]
    fn shared_burial_pass_leaves_vdw_bit_identical_and_counts_exact() {
        let s = VdwScore::default();
        let lib = BenchmarkLibrary::standard();
        let builder = LoopBuilder::default();
        for name in ["1cex", "1xyz"] {
            let target = lib.target_by_name(name).unwrap();
            let native = target.build(&builder, &target.native_torsions);
            let mut scratch = ScoreScratch::new();
            let plain = s.score_target_with(&target, &native, &mut scratch);
            let shared = s.score_target_with_burial(
                &target,
                &native,
                &mut scratch,
                crate::burial::BURIAL_RADIUS,
            );
            assert_eq!(plain.to_bits(), shared.to_bits(), "{name}");
            // The piggybacked counts equal the exhaustive linear reference.
            let env = target.env_candidates();
            for (i, res) in native.residues.iter().enumerate() {
                assert_eq!(
                    scratch.burial_counts()[i],
                    env.count_within_linear(res.ca, crate::burial::BURIAL_RADIUS),
                    "{name} residue {i}"
                );
            }
        }
    }

    #[test]
    fn per_residue_windows_match_per_site_gathers_and_linear() {
        let lib = BenchmarkLibrary::standard();
        let builder = LoopBuilder::default();
        for name in ["1cex", "1xyz", "5pti"] {
            let target = lib.target_by_name(name).unwrap();
            for torsions in [
                target.native_torsions.clone(),
                Torsions::zeros(target.n_residues()),
            ] {
                let structure = target.build(&builder, &torsions);
                let s = VdwScore::default();
                let mut scratch = ScoreScratch::new();
                let windows = s.environment_term(&target, &structure, &mut scratch);
                let per_site = s.environment_term_per_site(&target, &structure, &mut scratch);
                let linear = s.environment_term_linear(&target, &structure, &mut scratch);
                assert_eq!(windows.to_bits(), per_site.to_bits(), "{name}: per-site");
                assert_eq!(windows.to_bits(), linear.to_bits(), "{name}: linear");
            }
        }
    }

    #[test]
    fn windowed_burial_counts_match_linear_reference() {
        let s = VdwScore::default();
        let lib = BenchmarkLibrary::standard();
        let builder = LoopBuilder::default();
        for name in ["1cex", "1xyz"] {
            let target = lib.target_by_name(name).unwrap();
            let clashing = target.build(&builder, &Torsions::zeros(target.n_residues()));
            let mut scratch = ScoreScratch::new();
            s.score_target_with_burial(
                &target,
                &clashing,
                &mut scratch,
                crate::burial::BURIAL_RADIUS,
            );
            let env = target.env_candidates();
            for (i, res) in clashing.residues.iter().enumerate() {
                assert_eq!(
                    scratch.burial_counts()[i],
                    env.count_within_linear(res.ca, crate::burial::BURIAL_RADIUS),
                    "{name} residue {i}"
                );
            }
        }
    }

    #[cfg(feature = "simd")]
    #[test]
    fn wide_passes_are_bit_identical_to_scalar() {
        // Cover intra-loop, plain environment cells, and the shared
        // VDW+BURIAL pass (counts included) on clashing and native
        // conformations of surface and buried targets.
        let lib = BenchmarkLibrary::standard();
        let builder = LoopBuilder::default();
        for name in ["1cex", "1xyz", "5pti"] {
            let target = lib.target_by_name(name).unwrap();
            for torsions in [
                target.native_torsions.clone(),
                Torsions::zeros(target.n_residues()),
            ] {
                let structure = target.build(&builder, &torsions);
                let scalar = VdwScore::default();
                let wide = VdwScore::default().with_wide_lanes(true);
                assert!(wide.wide_lanes());
                let mut ss = ScoreScratch::new();
                let mut sw = ScoreScratch::new();

                let a = scalar.score_target_with(&target, &structure, &mut ss);
                let b = wide.score_target_with(&target, &structure, &mut sw);
                assert_eq!(a.to_bits(), b.to_bits(), "{name}: score_target_with");

                let a = scalar.environment_term(&target, &structure, &mut ss);
                let b = wide.environment_term(&target, &structure, &mut sw);
                assert_eq!(a.to_bits(), b.to_bits(), "{name}: environment_term");

                let a = scalar.environment_term_per_site(&target, &structure, &mut ss);
                let b = wide.environment_term_per_site(&target, &structure, &mut sw);
                assert_eq!(a.to_bits(), b.to_bits(), "{name}: per-site term");

                let r = crate::burial::BURIAL_RADIUS;
                let a = scalar.score_target_with_burial(&target, &structure, &mut ss, r);
                let b = wide.score_target_with_burial(&target, &structure, &mut sw, r);
                assert_eq!(a.to_bits(), b.to_bits(), "{name}: burial pass score");
                assert_eq!(ss.burial_counts(), sw.burial_counts(), "{name}: counts");
                assert_eq!(ss.ca_d2, sw.ca_d2, "{name}: shared ca_d2 table");
            }
        }
    }

    #[test]
    fn weights_scale_the_contributions() {
        let lib = BenchmarkLibrary::standard();
        let target = lib.target_by_name("1dim").unwrap();
        let builder = LoopBuilder::default();
        let clash_t = Torsions::zeros(target.n_residues());
        let clashing = target.build(&builder, &clash_t);

        let base = VdwScore::default().score_target(&target, &clashing);
        let doubled = VdwScore::new(
            VdwRadii::default(),
            ContactWeights {
                atom_atom: 2.0,
                atom_centroid: 1.0,
                centroid_centroid: 0.5,
            },
        )
        .score_target(&target, &clashing);
        assert!(
            (doubled - 2.0 * base).abs() < 1e-9,
            "doubling weights doubles the score"
        );
    }

    #[test]
    fn harder_spheres_raise_the_score() {
        let lib = BenchmarkLibrary::standard();
        let target = lib.target_by_name("153l").unwrap();
        let builder = LoopBuilder::default();
        let clash_t = Torsions::zeros(target.n_residues());
        let clashing = target.build(&builder, &clash_t);
        let soft = VdwScore::new(
            VdwRadii {
                softness: 0.8,
                ..VdwRadii::default()
            },
            ContactWeights::default(),
        )
        .score_target(&target, &clashing);
        let hard = VdwScore::new(
            VdwRadii {
                softness: 1.0,
                ..VdwRadii::default()
            },
            ContactWeights::default(),
        )
        .score_target(&target, &clashing);
        assert!(hard > soft);
    }
}
