//! Caller-owned scratch buffers for the zero-allocation scoring pipeline.
//!
//! Every scoring function can be evaluated through
//! [`ScoringFunction::score_with`](crate::traits::ScoringFunction::score_with),
//! which stages its intermediate data in a [`ScoreScratch`] instead of
//! allocating per call.  The buffers are laid out structure-of-arrays
//! (split x/y/z coordinate arrays plus parallel radius/kind arrays) so the
//! contact loops are branch-light and auto-vectorizable — the same data
//! layout a batched GPU evaluator would use.
//!
//! **Invariant:** after one warm-up evaluation on a given loop length, no
//! `score_with` call allocates.  `clear()` + `push` on retained `Vec`s is
//! the only buffer discipline used, and every capacity is a function of the
//! loop length, which is fixed per target.

use lms_protein::RamaClass;

/// Reusable scratch space shared by the VDW, DIST and TRIPLET kernels.
///
/// One `ScoreScratch` per concurrent evaluator (e.g. per population member)
/// suffices; the buffers grow to the high-water mark of the loop being
/// scored and are reused verbatim afterwards.
#[derive(Debug, Clone, Default)]
pub struct ScoreScratch {
    /// VDW interaction-site x coordinates (backbone atoms + centroids).
    pub(crate) site_x: Vec<f64>,
    /// VDW interaction-site y coordinates.
    pub(crate) site_y: Vec<f64>,
    /// VDW interaction-site z coordinates.
    pub(crate) site_z: Vec<f64>,
    /// VDW interaction-site soft-sphere radii.
    pub(crate) site_r: Vec<f64>,
    /// Residue index of each VDW site (for the covalent-neighbour skip).
    pub(crate) site_res: Vec<u32>,
    /// Whether each VDW site is a side-chain centroid pseudo-atom.
    pub(crate) site_centroid: Vec<bool>,
    /// Whether each VDW site is its residue's Cα — the probe point the
    /// shared environment pass computes BURIAL contact counts at.
    pub(crate) site_is_ca: Vec<bool>,
    /// DIST backbone-atom x coordinates (4 per residue: N, Cα, C', O).
    pub(crate) atom_x: Vec<f64>,
    /// DIST backbone-atom y coordinates.
    pub(crate) atom_y: Vec<f64>,
    /// DIST backbone-atom z coordinates.
    pub(crate) atom_z: Vec<f64>,
    /// TRIPLET per-residue Ramachandran classes.
    pub(crate) classes: Vec<RamaClass>,
    /// Candidate-index buffer the VDW environment kernel gathers cell-list
    /// query results into (one query per site, buffer reused across all of
    /// them).  Capacity is bounded by the target's total candidate count,
    /// which the kernel reserves up front so steady-state queries never
    /// allocate.
    pub(crate) env_idx: Vec<u32>,
    /// BURIAL per-residue environment contact counts.  Filled by the shared
    /// VDW/BURIAL environment pass (one cell-list gather per site serves
    /// both objectives) or by the standalone BURIAL kernel.
    pub(crate) burial_counts: Vec<u32>,
    /// Shared Cα–Cα squared-distance table (`n_residues × n_residues`,
    /// row-major, only `i < j` at separation ≥ 2 filled).  The VDW
    /// intra-loop pass records the squared distances it computes anyway for
    /// its Cα–Cα site pairs; the DIST kernel then reads its pair bounding
    /// check from the table instead of recomputing the Cα geometry — one
    /// staging of the Cα coordinates serves VDW, BURIAL and DIST.
    pub(crate) ca_d2: Vec<f64>,
    /// Whether `ca_d2` holds a freshly staged table for the structure under
    /// evaluation.  Set by the VDW intra-loop pass, *consumed* (reset) by
    /// the table-reading DIST kernel, so stage-order misuse — reading a
    /// table staged for a different structure — fails loudly instead of
    /// silently mis-skipping pairs.
    pub(crate) ca_d2_staged: bool,
    /// Squared-distance staging buffer of the wide (SIMD) VDW passes: one
    /// d² per candidate of the current site, computed four lanes at a time,
    /// then consumed by the unchanged scalar-order accumulation loop.
    /// Capacity floors at the row length (intra-loop) / candidate count
    /// (environment), so steady-state wide passes never allocate.  Unused
    /// (and never grown) on the scalar path.
    pub(crate) wide_d2: Vec<f64>,
}

impl ScoreScratch {
    /// Create an empty scratch; buffers are sized on first use.
    pub fn new() -> Self {
        ScoreScratch::default()
    }

    /// Create a scratch pre-sized for a loop of `n_residues`, so even the
    /// first evaluation allocates nothing.
    pub fn for_loop_len(n_residues: usize) -> Self {
        ScoreScratch {
            site_x: Vec::with_capacity(5 * n_residues),
            site_y: Vec::with_capacity(5 * n_residues),
            site_z: Vec::with_capacity(5 * n_residues),
            site_r: Vec::with_capacity(5 * n_residues),
            site_res: Vec::with_capacity(5 * n_residues),
            site_centroid: Vec::with_capacity(5 * n_residues),
            site_is_ca: Vec::with_capacity(5 * n_residues),
            atom_x: Vec::with_capacity(4 * n_residues),
            atom_y: Vec::with_capacity(4 * n_residues),
            atom_z: Vec::with_capacity(4 * n_residues),
            classes: Vec::with_capacity(n_residues),
            env_idx: Vec::new(),
            burial_counts: Vec::with_capacity(n_residues),
            ca_d2: Vec::with_capacity(n_residues * n_residues),
            ca_d2_staged: false,
            wide_d2: Vec::with_capacity(5 * n_residues),
        }
    }

    /// The per-residue burial contact counts of the most recent evaluation
    /// that computed them (empty until a burial-enabled kernel has run).
    pub fn burial_counts(&self) -> &[u32] {
        &self.burial_counts
    }

    /// Drop buffered contents (capacity is retained).
    pub fn clear(&mut self) {
        self.site_x.clear();
        self.site_y.clear();
        self.site_z.clear();
        self.site_r.clear();
        self.site_res.clear();
        self.site_centroid.clear();
        self.site_is_ca.clear();
        self.atom_x.clear();
        self.atom_y.clear();
        self.atom_z.clear();
        self.classes.clear();
        self.env_idx.clear();
        self.burial_counts.clear();
        self.ca_d2.clear();
        self.ca_d2_staged = false;
        self.wide_d2.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presized_scratch_has_capacity() {
        let s = ScoreScratch::for_loop_len(12);
        assert!(s.site_x.capacity() >= 60);
        assert!(s.atom_x.capacity() >= 48);
        assert!(s.classes.capacity() >= 12);
    }

    #[test]
    fn clear_retains_capacity() {
        let mut s = ScoreScratch::for_loop_len(8);
        s.site_x.extend_from_slice(&[1.0; 40]);
        let cap = s.site_x.capacity();
        s.clear();
        assert!(s.site_x.is_empty());
        assert_eq!(s.site_x.capacity(), cap);
    }
}
