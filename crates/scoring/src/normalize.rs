//! Score normalisation helpers.
//!
//! Figure 5 of the paper plots the non-dominated conformations on a
//! normalised `[0, 1]` scale per scoring function.  These helpers perform
//! that min-max normalisation over a population of score vectors.

use crate::traits::{Objective, ScoreVector, NUM_OBJECTIVES};

/// Per-objective minimum and maximum over a population.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScoreRange {
    /// Per-objective minima, canonical [`Objective`] order.
    pub min: [f64; NUM_OBJECTIVES],
    /// Per-objective maxima, canonical [`Objective`] order.
    pub max: [f64; NUM_OBJECTIVES],
}

impl ScoreRange {
    /// Compute the range over a set of score vectors.  Returns `None` for an
    /// empty slice.
    pub fn of(scores: &[ScoreVector]) -> Option<ScoreRange> {
        let first = scores.first()?;
        let mut min = first.as_array();
        let mut max = first.as_array();
        for s in &scores[1..] {
            let a = s.as_array();
            for i in 0..NUM_OBJECTIVES {
                min[i] = min[i].min(a[i]);
                max[i] = max[i].max(a[i]);
            }
        }
        Some(ScoreRange { min, max })
    }

    /// Normalise one score vector into `[0, 1]` per objective.  Objectives
    /// with zero spread map to 0.
    pub fn normalize(&self, s: &ScoreVector) -> ScoreVector {
        let a = s.as_array();
        let mut out = [0.0; NUM_OBJECTIVES];
        for i in 0..NUM_OBJECTIVES {
            let span = self.max[i] - self.min[i];
            out[i] = if span > 1e-12 {
                (a[i] - self.min[i]) / span
            } else {
                0.0
            };
        }
        ScoreVector::from_array(out)
    }

    /// Width of one objective's range.
    pub fn span(&self, objective: Objective) -> f64 {
        let i = objective.index();
        self.max[i] - self.min[i]
    }
}

/// Normalise a whole population of score vectors to `[0, 1]` per objective.
/// Returns an empty vector for empty input.
pub fn normalize_population(scores: &[ScoreVector]) -> Vec<ScoreVector> {
    match ScoreRange::of(scores) {
        None => Vec::new(),
        Some(range) => scores.iter().map(|s| range.normalize(s)).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_population() {
        assert!(ScoreRange::of(&[]).is_none());
        assert!(normalize_population(&[]).is_empty());
    }

    #[test]
    fn normalization_maps_to_unit_interval() {
        let scores = vec![
            ScoreVector::new(1.0, 10.0, -5.0),
            ScoreVector::new(3.0, 20.0, 0.0),
            ScoreVector::new(2.0, 15.0, -2.5),
        ];
        let normed = normalize_population(&scores);
        assert_eq!(normed.len(), 3);
        for n in &normed {
            for v in n.as_array() {
                assert!((0.0..=1.0).contains(&v), "value {v} outside [0, 1]");
            }
        }
        // Extremes map to exactly 0 and 1.
        assert_eq!(normed[0].vdw(), 0.0);
        assert_eq!(normed[1].vdw(), 1.0);
        assert_eq!(normed[0].dist(), 0.0);
        assert_eq!(normed[1].dist(), 1.0);
        assert_eq!(normed[0].triplet(), 0.0);
        assert_eq!(normed[1].triplet(), 1.0);
        // The burial slot is degenerate (all zero) and stays at zero.
        assert_eq!(normed[0].burial(), 0.0);
        // Midpoint stays a midpoint.
        assert!((normed[2].vdw() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn degenerate_objective_maps_to_zero() {
        let scores = vec![
            ScoreVector::new(2.0, 5.0, 1.0),
            ScoreVector::new(2.0, 6.0, 3.0),
        ];
        let normed = normalize_population(&scores);
        assert_eq!(normed[0].vdw(), 0.0);
        assert_eq!(normed[1].vdw(), 0.0);
        assert_eq!(normed[1].dist(), 1.0);
    }

    #[test]
    fn range_and_span() {
        let scores = vec![
            ScoreVector::new(1.0, 2.0, 3.0),
            ScoreVector::new(4.0, 2.0, 0.0),
        ];
        let r = ScoreRange::of(&scores).unwrap();
        assert_eq!(r.span(Objective::Vdw), 3.0);
        assert_eq!(r.span(Objective::Dist), 0.0);
        assert_eq!(r.span(Objective::Triplet), 3.0);
        assert_eq!(r.span(Objective::Burial), 0.0);
        assert_eq!(r.min, [1.0, 2.0, 0.0, 0.0]);
        assert_eq!(r.max, [4.0, 2.0, 3.0, 0.0]);
    }

    #[test]
    fn normalization_preserves_dominance() {
        let a = ScoreVector::new(1.0, 1.0, 1.0);
        let b = ScoreVector::new(2.0, 3.0, 4.0);
        let c = ScoreVector::new(0.0, 5.0, 2.0);
        let pop = vec![a, b, c];
        let normed = normalize_population(&pop);
        assert_eq!(a.dominates(&b), normed[0].dominates(&normed[1]));
        assert_eq!(a.dominates(&c), normed[0].dominates(&normed[2]));
        assert_eq!(c.dominates(&a), normed[2].dominates(&normed[0]));
    }
}
