//! The synthetic knowledge base behind the two knowledge-based scoring
//! functions (TRIPLET and DIST).
//!
//! The paper's TRIPLET potential is derived from the statistics of φ/ψ
//! pairs in triplet residue contexts collected from a large loop library,
//! and its DIST potential from observed pairwise backbone atom distances.
//! We do not ship those PDB-derived tables; instead this module *derives*
//! tables of exactly the same shape from the suite's generative
//! Ramachandran model: it samples a large number of synthetic loop
//! fragments, histograms the same observables the real potentials
//! histogram, and converts frequencies to energies with the usual inverse
//! Boltzmann rule.  The result is loaded once at start-up and treated as
//! read-only during sampling, mirroring how the paper stages its
//! pre-calculated tables into GPU texture memory.

use lms_geometry::{wrap_rad, StreamRngFactory};
use lms_protein::{
    build_segment_de_novo, AminoAcid, LoopBuilder, RamaClass, RamaLibrary, Torsions,
};
use rand::Rng;
use std::f64::consts::PI;
use std::sync::Arc;

/// Number of φ (and ψ) bins in the triplet table: 10° resolution.
pub const TRIPLET_BINS: usize = 36;

/// Number of distance bins in the pairwise table.
pub const DIST_BINS: usize = 32;

/// Width of one distance bin (Å).
pub const DIST_BIN_WIDTH: f64 = 0.5;

/// Maximum distance (Å) covered by the pairwise table; pairs farther apart
/// contribute nothing to the DIST score (and are not counted when the table
/// is built).
pub const DIST_MAX: f64 = DIST_BINS as f64 * DIST_BIN_WIDTH;

/// Backbone atom categories distinguished by the DIST potential.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BackboneAtomKind {
    /// Amide nitrogen.
    N,
    /// Alpha carbon.
    Ca,
    /// Carbonyl carbon.
    C,
    /// Carbonyl oxygen.
    O,
}

impl BackboneAtomKind {
    /// All categories in canonical order.
    pub const ALL: [BackboneAtomKind; 4] = [
        BackboneAtomKind::N,
        BackboneAtomKind::Ca,
        BackboneAtomKind::C,
        BackboneAtomKind::O,
    ];

    /// Stable index in `[0, 4)`.
    pub fn index(self) -> usize {
        match self {
            BackboneAtomKind::N => 0,
            BackboneAtomKind::Ca => 1,
            BackboneAtomKind::C => 2,
            BackboneAtomKind::O => 3,
        }
    }
}

/// Sequence-separation classes used by the DIST potential.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SeparationClass {
    /// |i − j| = 2.
    Near,
    /// |i − j| = 3 or 4.
    Medium,
    /// |i − j| ≥ 5.
    Far,
}

impl SeparationClass {
    /// Classify a residue separation (must be ≥ 2 to contribute).
    pub fn from_separation(sep: usize) -> Option<SeparationClass> {
        match sep {
            0 | 1 => None,
            2 => Some(SeparationClass::Near),
            3 | 4 => Some(SeparationClass::Medium),
            _ => Some(SeparationClass::Far),
        }
    }

    /// Stable index in `[0, 3)`.
    pub fn index(self) -> usize {
        match self {
            SeparationClass::Near => 0,
            SeparationClass::Medium => 1,
            SeparationClass::Far => 2,
        }
    }

    /// Number of classes.
    pub const COUNT: usize = 3;
}

/// Map a φ or ψ angle (radians) to its bin index in `[0, TRIPLET_BINS)`.
pub fn torsion_bin(angle: f64) -> usize {
    let a = wrap_rad(angle);
    // wrap_rad returns (-pi, pi]; shift to [0, 2pi) and bin.
    let shifted = if a >= PI { 0.0 } else { a + PI };
    let idx = (shifted / (2.0 * PI) * TRIPLET_BINS as f64).floor() as usize;
    idx.min(TRIPLET_BINS - 1)
}

/// Map a distance (Å) to its bin index, saturating at the last bin.
pub fn distance_bin(d: f64) -> usize {
    if d <= 0.0 {
        return 0;
    }
    ((d / DIST_BIN_WIDTH).floor() as usize).min(DIST_BINS - 1)
}

/// Number of contact-count bins in the burial table.
pub const BURIAL_BINS: usize = 16;

/// Width of one burial bin (environment contact counts per bin).
pub const BURIAL_BIN_WIDTH: usize = 4;

/// Map an environment contact count to its burial bin, saturating at the
/// last bin.
pub fn burial_bin(count: usize) -> usize {
    (count / BURIAL_BIN_WIDTH).min(BURIAL_BINS - 1)
}

/// Solvation/burial statistical table: energy indexed by the residue type
/// and its binned environment contact number (the count of fixed-environment
/// atoms within the burial radius of the residue's Cα).
///
/// Like the TRIPLET and DIST tables, the energies are *derived* rather than
/// shipped: a synthetic per-residue-type contact-number distribution stands
/// in for the PDB statistics the decoy-discrimination literature histograms,
/// with hydrophobic residue types centred on deeper burial than polar ones
/// (Kyte–Doolittle hydropathy drives the shift).  Conformations that bury
/// polar residues or expose hydrophobic ones therefore pay an energy
/// penalty — the facet of loop quality the VDW/DIST/TRIPLET trio is blind
/// to.
#[derive(Debug, Clone)]
pub struct BurialTable {
    /// energies[amino_acid][count_bin] flattened.
    energies: Vec<f64>,
}

impl BurialTable {
    fn flat_index(aa: AminoAcid, bin: usize) -> usize {
        aa.index() * BURIAL_BINS + bin
    }

    /// Look up the energy of a residue of type `aa` with `count` environment
    /// atoms within the burial radius of its Cα.
    pub fn energy(&self, aa: AminoAcid, count: usize) -> f64 {
        self.energies[Self::flat_index(aa, burial_bin(count))]
    }

    /// Total number of table entries.
    pub fn len(&self) -> usize {
        self.energies.len()
    }

    /// Whether the table is empty (never true for built tables).
    pub fn is_empty(&self) -> bool {
        self.energies.is_empty()
    }

    /// Size in bytes when staged on the device as f32 texels.
    pub fn device_bytes(&self) -> usize {
        self.len() * std::mem::size_of::<f32>()
    }
}

/// Triplet torsion-angle statistical table: energy indexed by the residue
/// classes of the (previous, central, next) residues and by the central
/// residue's binned (φ, ψ).
#[derive(Debug, Clone)]
pub struct TripletTable {
    /// energies[context][phi_bin][psi_bin]
    energies: Vec<f64>,
}

impl TripletTable {
    fn context_index(prev: RamaClass, center: RamaClass, next: RamaClass) -> usize {
        (prev.index() * RamaClass::COUNT + center.index()) * RamaClass::COUNT + next.index()
    }

    fn flat_index(context: usize, phi_bin: usize, psi_bin: usize) -> usize {
        (context * TRIPLET_BINS + phi_bin) * TRIPLET_BINS + psi_bin
    }

    /// Look up the energy for a residue with classes `(prev, center, next)`
    /// and torsions `(φ, ψ)`.
    pub fn energy(
        &self,
        prev: RamaClass,
        center: RamaClass,
        next: RamaClass,
        phi: f64,
        psi: f64,
    ) -> f64 {
        let ctx = Self::context_index(prev, center, next);
        self.energies[Self::flat_index(ctx, torsion_bin(phi), torsion_bin(psi))]
    }

    /// Total number of table entries (for memory accounting in the SIMT
    /// device model: these tables live in texture memory).
    pub fn len(&self) -> usize {
        self.energies.len()
    }

    /// Whether the table is empty (never true for built tables).
    pub fn is_empty(&self) -> bool {
        self.energies.is_empty()
    }

    /// Size in bytes when staged on the device as f32 texels.
    pub fn device_bytes(&self) -> usize {
        self.len() * std::mem::size_of::<f32>()
    }
}

/// Pairwise backbone-atom distance table: energy indexed by the two atom
/// kinds, the sequence-separation class and the binned distance.
#[derive(Debug, Clone)]
pub struct DistTable {
    /// energies[kind_a][kind_b][sep][bin] flattened.
    energies: Vec<f64>,
}

impl DistTable {
    fn flat_index(
        a: BackboneAtomKind,
        b: BackboneAtomKind,
        sep: SeparationClass,
        bin: usize,
    ) -> usize {
        ((a.index() * 4 + b.index()) * SeparationClass::COUNT + sep.index()) * DIST_BINS + bin
    }

    /// Look up the energy of a pair of atoms of the given kinds at residue
    /// separation `sep` and distance `d` (Å).
    pub fn energy(
        &self,
        a: BackboneAtomKind,
        b: BackboneAtomKind,
        sep: SeparationClass,
        d: f64,
    ) -> f64 {
        // The table is symmetrised at build time, so (a, b) and (b, a) agree.
        self.energies[Self::flat_index(a, b, sep, distance_bin(d))]
    }

    /// Total number of table entries.
    pub fn len(&self) -> usize {
        self.energies.len()
    }

    /// Whether the table is empty (never true for built tables).
    pub fn is_empty(&self) -> bool {
        self.energies.is_empty()
    }

    /// Size in bytes when staged on the device as f32 texels.
    pub fn device_bytes(&self) -> usize {
        self.len() * std::mem::size_of::<f32>()
    }
}

/// Parameters controlling knowledge-base construction.
///
/// `#[non_exhaustive]`: construct via [`KnowledgeBaseConfig::default`] /
/// [`KnowledgeBaseConfig::fast`] and the `with_*` setters.
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub struct KnowledgeBaseConfig {
    /// RNG seed for fragment sampling.
    pub seed: u64,
    /// Number of (φ, ψ) samples per triplet context.
    pub triplet_samples_per_context: usize,
    /// Number of synthetic fragments sampled for the distance statistics.
    pub dist_fragments: usize,
    /// Length (residues) of each sampled fragment.
    pub dist_fragment_len: usize,
    /// Number of synthetic contact-count samples per residue type for the
    /// burial statistics.
    pub burial_samples_per_type: usize,
    /// Additive smoothing pseudo-count applied to every histogram bin.
    pub smoothing: f64,
}

impl Default for KnowledgeBaseConfig {
    fn default() -> Self {
        KnowledgeBaseConfig {
            seed: 7102,
            triplet_samples_per_context: 6000,
            dist_fragments: 600,
            dist_fragment_len: 12,
            burial_samples_per_type: 4000,
            smoothing: 0.5,
        }
    }
}

impl KnowledgeBaseConfig {
    /// A smaller configuration for fast unit tests.  The triplet sample
    /// count is kept high enough that the neighbour-coupling effects the
    /// tests assert on (e.g. the pre-proline α-basin penalty, a ~30 %
    /// relative frequency shift in a single 10°×10° bin) stand clear of
    /// sampling noise for any stream seed.
    pub fn fast() -> Self {
        KnowledgeBaseConfig {
            triplet_samples_per_context: 2500,
            dist_fragments: 80,
            burial_samples_per_type: 1500,
            ..Default::default()
        }
    }

    /// Set the RNG seed for fragment sampling.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Set the number of (φ, ψ) samples per triplet context.
    #[must_use]
    pub fn with_triplet_samples(mut self, samples: usize) -> Self {
        self.triplet_samples_per_context = samples;
        self
    }

    /// Set the number of synthetic fragments sampled for the distance
    /// statistics.
    #[must_use]
    pub fn with_dist_fragments(mut self, fragments: usize) -> Self {
        self.dist_fragments = fragments;
        self
    }

    /// Set the length (residues) of each sampled fragment.
    #[must_use]
    pub fn with_dist_fragment_len(mut self, len: usize) -> Self {
        self.dist_fragment_len = len;
        self
    }

    /// Set the number of synthetic contact-count samples per residue type
    /// for the burial statistics.
    #[must_use]
    pub fn with_burial_samples(mut self, samples: usize) -> Self {
        self.burial_samples_per_type = samples;
        self
    }

    /// Set the additive smoothing pseudo-count applied to every histogram
    /// bin.
    #[must_use]
    pub fn with_smoothing(mut self, smoothing: f64) -> Self {
        self.smoothing = smoothing;
        self
    }
}

/// The complete pre-calculated knowledge base: both tables plus the
/// Ramachandran library they were derived from.
#[derive(Debug, Clone)]
pub struct KnowledgeBase {
    /// The triplet torsion table.
    pub triplet: TripletTable,
    /// The pairwise distance table.
    pub dist: DistTable,
    /// The solvation/burial contact-number table.
    pub burial: BurialTable,
    config: KnowledgeBaseConfig,
}

impl KnowledgeBase {
    /// Build the knowledge base from scratch (samples fragments, builds the
    /// histograms, converts to energies).  Deterministic in the seed.
    pub fn build(config: KnowledgeBaseConfig) -> Arc<KnowledgeBase> {
        let rama = RamaLibrary::default();
        let triplet = build_triplet_table(&rama, &config);
        let dist = build_dist_table(&rama, &config);
        let burial = build_burial_table(&config);
        Arc::new(KnowledgeBase {
            triplet,
            dist,
            burial,
            config,
        })
    }

    /// Build with default (full-size) parameters.
    pub fn standard() -> Arc<KnowledgeBase> {
        Self::build(KnowledgeBaseConfig::default())
    }

    /// The configuration used to build this knowledge base.
    pub fn config(&self) -> &KnowledgeBaseConfig {
        &self.config
    }

    /// Total bytes of pre-calculated data staged to the device (texture
    /// memory) by the GPU implementation.
    pub fn device_bytes(&self) -> usize {
        self.triplet.device_bytes() + self.dist.device_bytes() + self.burial.device_bytes()
    }
}

fn build_triplet_table(rama: &RamaLibrary, config: &KnowledgeBaseConfig) -> TripletTable {
    let n_contexts = RamaClass::COUNT * RamaClass::COUNT * RamaClass::COUNT;
    let mut energies = vec![0.0f64; n_contexts * TRIPLET_BINS * TRIPLET_BINS];
    let factory = StreamRngFactory::new(config.seed).derive(1);

    let classes = [RamaClass::General, RamaClass::Glycine, RamaClass::Proline];
    for &prev in &classes {
        for &center in &classes {
            for &next in &classes {
                let ctx = TripletTable::context_index(prev, center, next);
                let mut rng = factory.stream(ctx as u64, 0);
                let mut counts = vec![config.smoothing; TRIPLET_BINS * TRIPLET_BINS];
                let model = rama.model(center);
                for _ in 0..config.triplet_samples_per_context {
                    // The neighbouring residues narrow the central residue's
                    // accessible basins: emulate the local sequence-structure
                    // coupling by rejecting samples that sit in basins the
                    // neighbours disfavour.
                    let (phi, psi) = loop {
                        let (phi, psi) = model.sample(&mut rng);
                        if neighbour_compatible(prev, next, phi, psi, &mut rng) {
                            break (phi, psi);
                        }
                    };
                    counts[torsion_bin(phi) * TRIPLET_BINS + torsion_bin(psi)] += 1.0;
                }
                let total: f64 = counts.iter().sum();
                for (bin, &c) in counts.iter().enumerate() {
                    let p = c / total;
                    // Inverse Boltzmann against a uniform reference state.
                    let p_ref = 1.0 / (TRIPLET_BINS * TRIPLET_BINS) as f64;
                    let e = -(p / p_ref).ln();
                    let (pb, sb) = (bin / TRIPLET_BINS, bin % TRIPLET_BINS);
                    energies[TripletTable::flat_index(ctx, pb, sb)] = e;
                }
            }
        }
    }
    TripletTable { energies }
}

/// Emulated neighbour coupling: proline neighbours disfavour α-basin
/// conformations of the central residue, glycine neighbours relax the map.
fn neighbour_compatible<R: Rng + ?Sized>(
    prev: RamaClass,
    next: RamaClass,
    phi: f64,
    _psi: f64,
    rng: &mut R,
) -> bool {
    let alpha_like = phi < 0.0 && phi > -2.0;
    let mut accept: f64 = 1.0;
    if next == RamaClass::Proline && alpha_like {
        accept *= 0.55;
    }
    if prev == RamaClass::Proline && alpha_like {
        accept *= 0.8;
    }
    if prev == RamaClass::Glycine || next == RamaClass::Glycine {
        accept = accept.max(0.9);
    }
    rng.gen::<f64>() < accept
}

fn build_dist_table(rama: &RamaLibrary, config: &KnowledgeBaseConfig) -> DistTable {
    let builder = LoopBuilder::default();
    let factory = StreamRngFactory::new(config.seed).derive(2);
    let n = 4 * 4 * SeparationClass::COUNT * DIST_BINS;
    let mut counts = vec![config.smoothing; n];

    for frag in 0..config.dist_fragments {
        let mut rng = factory.stream(frag as u64, 0);
        // Random non-Pro/Gly-biased sequence; classes only matter through
        // the torsion statistics here.
        let sequence: Vec<AminoAcid> = (0..config.dist_fragment_len)
            .map(|_| AminoAcid::from_index(rng.gen_range(0..20)))
            .collect();
        let mut torsions = Torsions::zeros(config.dist_fragment_len);
        #[allow(clippy::needless_range_loop)] // parallel index into sequence and torsions
        for i in 0..config.dist_fragment_len {
            let (phi, psi) = rama.model(sequence[i].rama_class()).sample(&mut rng);
            torsions.set_phi(i, phi);
            torsions.set_psi(i, psi);
        }
        let structure = build_segment_de_novo(&builder, &sequence, &torsions);
        let per_res: Vec<[(BackboneAtomKind, lms_geometry::Vec3); 4]> = structure
            .residues
            .iter()
            .map(|r| {
                [
                    (BackboneAtomKind::N, r.n),
                    (BackboneAtomKind::Ca, r.ca),
                    (BackboneAtomKind::C, r.c),
                    (BackboneAtomKind::O, r.o),
                ]
            })
            .collect();
        for i in 0..per_res.len() {
            for j in (i + 1)..per_res.len() {
                let Some(sep) = SeparationClass::from_separation(j - i) else {
                    continue;
                };
                for &(ka, pa) in &per_res[i] {
                    for &(kb, pb) in &per_res[j] {
                        let d = pa.distance(pb);
                        if d >= DIST_MAX {
                            continue;
                        }
                        let bin = distance_bin(d);
                        counts[DistTable::flat_index(ka, kb, sep, bin)] += 1.0;
                        counts[DistTable::flat_index(kb, ka, sep, bin)] += 1.0;
                    }
                }
            }
        }
    }

    // Convert to energies with an inverse Boltzmann rule against a uniform
    // reference over the table's distance range:
    //   E(kinds, sep, d) = -ln( P(d | kinds, sep) / (1 / DIST_BINS) ).
    // Bins never observed for a pair type therefore come out strongly
    // unfavourable (clashing or geometrically inaccessible distances).
    let mut energies = vec![0.0f64; n];
    let p_ref = 1.0 / DIST_BINS as f64;
    for a in BackboneAtomKind::ALL {
        for b in BackboneAtomKind::ALL {
            for sep in [
                SeparationClass::Near,
                SeparationClass::Medium,
                SeparationClass::Far,
            ] {
                let pair_total: f64 = (0..DIST_BINS)
                    .map(|bin| counts[DistTable::flat_index(a, b, sep, bin)])
                    .sum();
                for bin in 0..DIST_BINS {
                    let p = counts[DistTable::flat_index(a, b, sep, bin)] / pair_total;
                    energies[DistTable::flat_index(a, b, sep, bin)] = -(p / p_ref).ln();
                }
            }
        }
    }
    DistTable { energies }
}

/// Mean burial contact count of the most solvent-exposed residue type.
const BURIAL_MEAN_EXPOSED: f64 = 14.0;

/// Extra mean contact count the most hydrophobic (deepest-buried) residue
/// type adds on top of [`BURIAL_MEAN_EXPOSED`].
const BURIAL_MEAN_SPREAD: f64 = 22.0;

/// Standard deviation of the synthetic contact-count distribution.
const BURIAL_SIGMA: f64 = 8.0;

/// Range of the Kyte–Doolittle hydropathy index (±4.5).
const HYDROPATHY_HALF_RANGE: f64 = 4.5;

fn build_burial_table(config: &KnowledgeBaseConfig) -> BurialTable {
    let factory = StreamRngFactory::new(config.seed).derive(3);
    let mut energies = vec![0.0f64; 20 * BURIAL_BINS];
    for idx in 0..20usize {
        let aa = AminoAcid::from_index(idx);
        // Hydrophobic residues centre on deeper burial: map the hydropathy
        // index from [-4.5, 4.5] to a mean contact count in
        // [BURIAL_MEAN_EXPOSED, BURIAL_MEAN_EXPOSED + BURIAL_MEAN_SPREAD].
        let h = (aa.hydropathy() + HYDROPATHY_HALF_RANGE) / (2.0 * HYDROPATHY_HALF_RANGE);
        let mean = BURIAL_MEAN_EXPOSED + BURIAL_MEAN_SPREAD * h;
        let mut rng = factory.stream(idx as u64, 0);
        let mut counts = [config.smoothing; BURIAL_BINS];
        for _ in 0..config.burial_samples_per_type {
            // Approximately standard-normal noise via the Irwin–Hall sum of
            // 12 uniforms (keeps the vendored `rand` subset sufficient).
            let g: f64 = (0..12).map(|_| rng.gen::<f64>()).sum::<f64>() - 6.0;
            let sample = (mean + BURIAL_SIGMA * g).round().max(0.0) as usize;
            counts[burial_bin(sample)] += 1.0;
        }
        let total: f64 = counts.iter().sum();
        let p_ref = 1.0 / BURIAL_BINS as f64;
        for (bin, &c) in counts.iter().enumerate() {
            let p = c / total;
            energies[BurialTable::flat_index(aa, bin)] = -(p / p_ref).ln();
        }
    }
    BurialTable { energies }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lms_geometry::deg_to_rad;

    fn fast_kb() -> Arc<KnowledgeBase> {
        KnowledgeBase::build(KnowledgeBaseConfig {
            seed: 11,
            ..KnowledgeBaseConfig::fast()
        })
    }

    #[test]
    fn torsion_bins_cover_the_circle() {
        assert_eq!(torsion_bin(-PI + 1e-6), 0);
        assert_eq!(
            torsion_bin(PI),
            0,
            "+pi wraps to the first bin (same as -pi)"
        );
        assert_eq!(torsion_bin(0.0), TRIPLET_BINS / 2);
        // Every bin is hit.
        let mut seen = [false; TRIPLET_BINS];
        for i in 0..720 {
            let a = -PI + (i as f64 + 0.5) / 720.0 * 2.0 * PI;
            seen[torsion_bin(a)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn distance_bins_saturate() {
        assert_eq!(distance_bin(-1.0), 0);
        assert_eq!(distance_bin(0.1), 0);
        assert_eq!(distance_bin(0.6), 1);
        assert_eq!(distance_bin(1_000.0), DIST_BINS - 1);
    }

    #[test]
    fn separation_classes() {
        assert_eq!(SeparationClass::from_separation(0), None);
        assert_eq!(SeparationClass::from_separation(1), None);
        assert_eq!(
            SeparationClass::from_separation(2),
            Some(SeparationClass::Near)
        );
        assert_eq!(
            SeparationClass::from_separation(3),
            Some(SeparationClass::Medium)
        );
        assert_eq!(
            SeparationClass::from_separation(4),
            Some(SeparationClass::Medium)
        );
        assert_eq!(
            SeparationClass::from_separation(9),
            Some(SeparationClass::Far)
        );
    }

    #[test]
    fn knowledge_base_is_deterministic() {
        let a = fast_kb();
        let b = fast_kb();
        let probe = |kb: &KnowledgeBase| {
            kb.triplet.energy(
                RamaClass::General,
                RamaClass::General,
                RamaClass::General,
                deg_to_rad(-63.0),
                deg_to_rad(-43.0),
            ) + kb.dist.energy(
                BackboneAtomKind::Ca,
                BackboneAtomKind::Ca,
                SeparationClass::Medium,
                5.3,
            )
        };
        assert_eq!(probe(&a), probe(&b));
    }

    #[test]
    fn triplet_table_favours_allowed_regions() {
        let kb = fast_kb();
        let e_alpha = kb.triplet.energy(
            RamaClass::General,
            RamaClass::General,
            RamaClass::General,
            deg_to_rad(-63.0),
            deg_to_rad(-43.0),
        );
        let e_forbidden = kb.triplet.energy(
            RamaClass::General,
            RamaClass::General,
            RamaClass::General,
            deg_to_rad(75.0),
            deg_to_rad(-100.0),
        );
        assert!(
            e_alpha < e_forbidden - 1.0,
            "alpha {e_alpha} should be much better than forbidden {e_forbidden}"
        );
    }

    #[test]
    fn triplet_table_sees_proline_context() {
        let kb = fast_kb();
        // An alpha-basin central residue is penalised when followed by Pro.
        let plain = kb.triplet.energy(
            RamaClass::General,
            RamaClass::General,
            RamaClass::General,
            deg_to_rad(-63.0),
            deg_to_rad(-43.0),
        );
        let before_pro = kb.triplet.energy(
            RamaClass::General,
            RamaClass::General,
            RamaClass::Proline,
            deg_to_rad(-63.0),
            deg_to_rad(-43.0),
        );
        assert!(
            before_pro > plain,
            "pre-proline context should raise the alpha energy"
        );
    }

    #[test]
    fn dist_table_penalises_clashing_distances() {
        let kb = fast_kb();
        for sep in [
            SeparationClass::Near,
            SeparationClass::Medium,
            SeparationClass::Far,
        ] {
            let clash = kb
                .dist
                .energy(BackboneAtomKind::Ca, BackboneAtomKind::Ca, sep, 1.2);
            let typical = kb
                .dist
                .energy(BackboneAtomKind::Ca, BackboneAtomKind::Ca, sep, 6.0);
            assert!(
                clash > typical,
                "sep {sep:?}: clash energy {clash} should exceed typical {typical}"
            );
        }
    }

    #[test]
    fn dist_table_is_symmetric_in_atom_kinds() {
        let kb = fast_kb();
        for sep in [SeparationClass::Near, SeparationClass::Far] {
            for d in [3.0, 5.5, 8.0] {
                let ab = kb
                    .dist
                    .energy(BackboneAtomKind::N, BackboneAtomKind::O, sep, d);
                let ba = kb
                    .dist
                    .energy(BackboneAtomKind::O, BackboneAtomKind::N, sep, d);
                assert!((ab - ba).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn table_sizes_and_device_bytes() {
        let kb = fast_kb();
        assert_eq!(kb.triplet.len(), 27 * TRIPLET_BINS * TRIPLET_BINS);
        assert_eq!(kb.dist.len(), 16 * SeparationClass::COUNT * DIST_BINS);
        assert_eq!(kb.burial.len(), 20 * BURIAL_BINS);
        assert!(!kb.triplet.is_empty());
        assert!(!kb.dist.is_empty());
        assert!(!kb.burial.is_empty());
        assert_eq!(
            kb.device_bytes(),
            (kb.triplet.len() + kb.dist.len() + kb.burial.len()) * std::mem::size_of::<f32>()
        );
    }

    #[test]
    fn burial_bins_saturate() {
        assert_eq!(burial_bin(0), 0);
        assert_eq!(burial_bin(BURIAL_BIN_WIDTH - 1), 0);
        assert_eq!(burial_bin(BURIAL_BIN_WIDTH), 1);
        assert_eq!(burial_bin(10_000), BURIAL_BINS - 1);
    }

    #[test]
    fn burial_table_is_deterministic() {
        let a = fast_kb();
        let b = fast_kb();
        for count in [0, 8, 24, 40, 64] {
            assert_eq!(
                a.burial.energy(AminoAcid::Ile, count),
                b.burial.energy(AminoAcid::Ile, count)
            );
        }
    }

    #[test]
    fn burial_table_separates_hydrophobic_from_polar() {
        let kb = fast_kb();
        // Deep burial (high contact count) is cheap for hydrophobic Ile and
        // expensive for charged Asp; full exposure is the reverse.
        let buried = 40;
        let exposed = 8;
        assert!(
            kb.burial.energy(AminoAcid::Ile, buried) < kb.burial.energy(AminoAcid::Asp, buried),
            "burying Ile should be cheaper than burying Asp"
        );
        assert!(
            kb.burial.energy(AminoAcid::Asp, exposed) < kb.burial.energy(AminoAcid::Asp, buried),
            "Asp should prefer exposure"
        );
        assert!(
            kb.burial.energy(AminoAcid::Ile, buried) < kb.burial.energy(AminoAcid::Ile, exposed),
            "Ile should prefer burial"
        );
    }
}
