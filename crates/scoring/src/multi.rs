//! The multi-scoring evaluator: the enabled objective set evaluated
//! together on one conformation.
//!
//! The three core objectives (VDW, DIST, TRIPLET) are always evaluated; the
//! BURIAL solvation term is an opt-in fourth objective
//! ([`MultiScorer::with_burial`]).  When it is off, the BURIAL slot of every
//! [`ScoreVector`] stays at exactly `0.0` and the evaluation runs the
//! identical kernels as the three-objective pipeline — bit-identical
//! behaviour, so enabling the objective is a pure extension.  When it is on,
//! the VDW environment pass piggybacks the per-residue contact counts on its
//! cell-list gathers ([`VdwScore::score_target_with_burial`]), so the fourth
//! objective costs one extra distance filter per Cα site rather than a
//! second sweep over the environment.

use crate::burial::BurialScore;
use crate::dist::DistScore;
use crate::library::KnowledgeBase;
use crate::traits::{ScoreVector, ScoringFunction};
use crate::triplet::TripletScore;
use crate::vdw::VdwScore;
use crate::workspace::ScoreScratch;
use lms_protein::{LoopStructure, LoopTarget, Torsions};
use std::sync::Arc;

/// Bundles the scoring functions and evaluates them on a conformation in
/// one call, producing a [`ScoreVector`].
///
/// `MultiScorer` is cheap to clone (the knowledge base is shared through an
/// `Arc`), so every worker thread of the parallel executor can own one.
#[derive(Debug, Clone)]
pub struct MultiScorer {
    vdw: VdwScore,
    dist: DistScore,
    triplet: TripletScore,
    burial: BurialScore,
    burial_enabled: bool,
}

impl MultiScorer {
    /// Create the evaluator over a pre-built knowledge base, with default
    /// VDW parameters and the burial objective disabled (the paper's
    /// three-objective configuration).
    pub fn new(kb: Arc<KnowledgeBase>) -> Self {
        MultiScorer {
            vdw: VdwScore::default(),
            dist: DistScore::new(Arc::clone(&kb)),
            triplet: TripletScore::new(Arc::clone(&kb)),
            burial: BurialScore::new(kb),
            burial_enabled: false,
        }
    }

    /// Replace the VDW component (used by ablation benches).
    pub fn with_vdw(mut self, vdw: VdwScore) -> Self {
        self.vdw = vdw;
        self
    }

    /// Enable or disable the BURIAL objective.  Disabled (the default), the
    /// evaluation is bit-identical to the three-objective pipeline.
    #[must_use]
    pub fn with_burial(mut self, enabled: bool) -> Self {
        self.burial_enabled = enabled;
        self
    }

    /// Enable or disable explicit wide-`f64` lanes in the VDW contact
    /// distance passes (see [`VdwScore::with_wide_lanes`]).  The sampler
    /// flips this on when the executor backend reports a wide lane width;
    /// scores are bit-identical either way.
    #[must_use]
    pub fn with_wide_lanes(mut self, wide: bool) -> Self {
        self.vdw = self.vdw.with_wide_lanes(wide);
        self
    }

    /// Whether the VDW passes use the wide distance kernel.
    pub fn wide_lanes(&self) -> bool {
        self.vdw.wide_lanes()
    }

    /// Whether the BURIAL objective is evaluated.
    pub fn burial_enabled(&self) -> bool {
        self.burial_enabled
    }

    /// Evaluate the enabled scoring functions on a built conformation.
    /// Allocating wrapper over [`MultiScorer::evaluate_with`].
    pub fn evaluate(
        &self,
        target: &LoopTarget,
        structure: &LoopStructure,
        torsions: &Torsions,
    ) -> ScoreVector {
        let mut scratch = ScoreScratch::new();
        self.evaluate_with(target, structure, torsions, &mut scratch)
    }

    /// Evaluate the enabled scoring functions using caller-owned scratch
    /// buffers: the zero-allocation path the sampler's evolution kernel
    /// runs once per conformation per iteration.  Returns exactly the same
    /// vector as [`MultiScorer::evaluate`].
    ///
    /// This is the fused composition of the staged per-objective passes
    /// ([`MultiScorer::vdw_pass`] → [`MultiScorer::dist_pass`] →
    /// [`MultiScorer::triplet_pass`]), which the population-batched sampler
    /// pipeline instead launches as separate population-wide kernels —
    /// stage order and scratch state are identical either way, so the two
    /// call patterns are bit-identical.
    pub fn evaluate_with(
        &self,
        target: &LoopTarget,
        structure: &LoopStructure,
        torsions: &Torsions,
        scratch: &mut ScoreScratch,
    ) -> ScoreVector {
        let (vdw, burial) = self.vdw_pass(target, structure, scratch);
        let dist = self.dist_pass(target, structure, scratch);
        let triplet = self.triplet_pass(target, structure, torsions, scratch);
        let v = ScoreVector::new(vdw, dist, triplet);
        if self.burial_enabled {
            v.with_burial(burial)
        } else {
            v
        }
    }

    /// Staged VDW kernel: stages the interaction sites (recording the shared
    /// Cα–Cα distance table the DIST pass reads its bounding check from) and
    /// runs the intra-loop and environment clash sums.  With the burial
    /// objective enabled, the environment pass piggybacks the per-residue
    /// contact counts on the same cell-list gathers and the second returned
    /// value is the BURIAL score; otherwise it is `0.0`.
    ///
    /// Must run before [`MultiScorer::dist_pass`] on the same scratch — this
    /// pass owns the shared staging the later kernels consume.
    pub fn vdw_pass(
        &self,
        target: &LoopTarget,
        structure: &LoopStructure,
        scratch: &mut ScoreScratch,
    ) -> (f64, f64) {
        if self.burial_enabled {
            let vdw =
                self.vdw
                    .score_target_with_burial(target, structure, scratch, self.burial.radius());
            let counts = std::mem::take(&mut scratch.burial_counts);
            let burial = self.burial.score_from_counts(target, &counts);
            scratch.burial_counts = counts;
            (vdw, burial)
        } else {
            (self.vdw.score_target_with(target, structure, scratch), 0.0)
        }
    }

    /// Staged DIST kernel: the atom pair-wise distance score with the Cα–Cα
    /// bounding check read from the shared table recorded by
    /// [`MultiScorer::vdw_pass`] — one Cα staging serves three objectives.
    pub fn dist_pass(
        &self,
        _target: &LoopTarget,
        structure: &LoopStructure,
        scratch: &mut ScoreScratch,
    ) -> f64 {
        self.dist.score_structure_with_ca_table(structure, scratch)
    }

    /// Staged TRIPLET kernel: the torsion-triplet score (independent of the
    /// shared staging; it reads only the torsion vector).
    pub fn triplet_pass(
        &self,
        target: &LoopTarget,
        structure: &LoopStructure,
        torsions: &Torsions,
        scratch: &mut ScoreScratch,
    ) -> f64 {
        self.triplet
            .score_with(target, structure, torsions, scratch)
    }

    /// Access the enabled scoring functions in canonical objective order,
    /// used by the component-timing profile of Figure 1 / Table II.
    pub fn components(&self) -> Vec<&dyn ScoringFunction> {
        let mut c: Vec<&dyn ScoringFunction> = vec![&self.vdw, &self.dist, &self.triplet];
        if self.burial_enabled {
            c.push(&self.burial);
        }
        c
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::library::KnowledgeBaseConfig;
    use lms_protein::{BenchmarkLibrary, LoopBuilder};

    fn scorer() -> MultiScorer {
        MultiScorer::new(KnowledgeBase::build(KnowledgeBaseConfig::fast()))
    }

    #[test]
    fn evaluate_matches_individual_components() {
        let s = scorer();
        let lib = BenchmarkLibrary::standard();
        let target = lib.target_by_name("1cex").unwrap();
        let builder = LoopBuilder::default();
        let native = target.build(&builder, &target.native_torsions);
        let v = s.evaluate(&target, &native, &target.native_torsions);
        let comps = s.components();
        assert_eq!(comps.len(), 3);
        assert_eq!(comps[0].name(), "VDW");
        assert_eq!(comps[1].name(), "DIST");
        assert_eq!(comps[2].name(), "TRIPLET");
        assert_eq!(
            v.vdw(),
            comps[0].score(&target, &native, &target.native_torsions)
        );
        assert_eq!(
            v.dist(),
            comps[1].score(&target, &native, &target.native_torsions)
        );
        assert_eq!(
            v.triplet(),
            comps[2].score(&target, &native, &target.native_torsions)
        );
        assert_eq!(v.burial(), 0.0, "disabled burial slot stays zero");
        assert!(v.is_finite());
    }

    #[test]
    fn burial_enabled_evaluation_matches_components_and_keeps_core_scores() {
        let s3 = scorer();
        let s4 = s3.clone().with_burial(true);
        assert!(s4.burial_enabled());
        let lib = BenchmarkLibrary::standard();
        let target = lib.target_by_name("1xyz").unwrap();
        let builder = LoopBuilder::default();
        let native = target.build(&builder, &target.native_torsions);

        let v3 = s3.evaluate(&target, &native, &target.native_torsions);
        let v4 = s4.evaluate(&target, &native, &target.native_torsions);
        // The shared gather leaves the three core objectives bit-identical.
        assert_eq!(v3.vdw().to_bits(), v4.vdw().to_bits());
        assert_eq!(v3.dist().to_bits(), v4.dist().to_bits());
        assert_eq!(v3.triplet().to_bits(), v4.triplet().to_bits());
        assert_eq!(v3.burial(), 0.0);
        assert!(v4.burial() != 0.0, "buried target has non-trivial burial");

        // The fourth component agrees with the standalone scoring function.
        let comps = s4.components();
        assert_eq!(comps.len(), 4);
        assert_eq!(comps[3].name(), "BURIAL");
        assert_eq!(
            v4.burial(),
            comps[3].score(&target, &native, &target.native_torsions)
        );
    }

    #[test]
    fn clone_shares_knowledge_base_and_scores_identically() {
        let s1 = scorer().with_burial(true);
        let s2 = s1.clone();
        let lib = BenchmarkLibrary::standard();
        let target = lib.target_by_name("3pte").unwrap();
        let builder = LoopBuilder::default();
        let native = target.build(&builder, &target.native_torsions);
        assert_eq!(
            s1.evaluate(&target, &native, &target.native_torsions),
            s2.evaluate(&target, &native, &target.native_torsions)
        );
    }
}
