//! The multi-scoring evaluator: VDW + DIST + TRIPLET evaluated together.

use crate::dist::DistScore;
use crate::library::KnowledgeBase;
use crate::traits::{ScoreVector, ScoringFunction};
use crate::triplet::TripletScore;
use crate::vdw::VdwScore;
use crate::workspace::ScoreScratch;
use lms_protein::{LoopStructure, LoopTarget, Torsions};
use std::sync::Arc;

/// Bundles the three scoring functions of the paper and evaluates them on a
/// conformation in one call, producing a [`ScoreVector`].
///
/// `MultiScorer` is cheap to clone (the knowledge base is shared through an
/// `Arc`), so every worker thread of the parallel executor can own one.
#[derive(Debug, Clone)]
pub struct MultiScorer {
    vdw: VdwScore,
    dist: DistScore,
    triplet: TripletScore,
}

impl MultiScorer {
    /// Create the evaluator over a pre-built knowledge base, with default
    /// VDW parameters.
    pub fn new(kb: Arc<KnowledgeBase>) -> Self {
        MultiScorer {
            vdw: VdwScore::default(),
            dist: DistScore::new(Arc::clone(&kb)),
            triplet: TripletScore::new(kb),
        }
    }

    /// Replace the VDW component (used by ablation benches).
    pub fn with_vdw(mut self, vdw: VdwScore) -> Self {
        self.vdw = vdw;
        self
    }

    /// Evaluate all three scoring functions on a built conformation.
    /// Allocating wrapper over [`MultiScorer::evaluate_with`].
    pub fn evaluate(
        &self,
        target: &LoopTarget,
        structure: &LoopStructure,
        torsions: &Torsions,
    ) -> ScoreVector {
        let mut scratch = ScoreScratch::new();
        self.evaluate_with(target, structure, torsions, &mut scratch)
    }

    /// Evaluate all three scoring functions using caller-owned scratch
    /// buffers: the zero-allocation path the sampler's evolution kernel
    /// runs once per conformation per iteration.  Returns exactly the same
    /// vector as [`MultiScorer::evaluate`].
    pub fn evaluate_with(
        &self,
        target: &LoopTarget,
        structure: &LoopStructure,
        torsions: &Torsions,
        scratch: &mut ScoreScratch,
    ) -> ScoreVector {
        ScoreVector {
            vdw: self.vdw.score_with(target, structure, torsions, scratch),
            dist: self.dist.score_with(target, structure, torsions, scratch),
            triplet: self
                .triplet
                .score_with(target, structure, torsions, scratch),
        }
    }

    /// Access the individual scoring functions (name, evaluator closure),
    /// used by the component-timing profile of Figure 1 / Table II.
    pub fn components(&self) -> [&dyn ScoringFunction; 3] {
        [&self.vdw, &self.dist, &self.triplet]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::library::KnowledgeBaseConfig;
    use lms_protein::{BenchmarkLibrary, LoopBuilder};

    fn scorer() -> MultiScorer {
        MultiScorer::new(KnowledgeBase::build(KnowledgeBaseConfig::fast()))
    }

    #[test]
    fn evaluate_matches_individual_components() {
        let s = scorer();
        let lib = BenchmarkLibrary::standard();
        let target = lib.target_by_name("1cex").unwrap();
        let builder = LoopBuilder::default();
        let native = target.build(&builder, &target.native_torsions);
        let v = s.evaluate(&target, &native, &target.native_torsions);
        let comps = s.components();
        assert_eq!(comps[0].name(), "VDW");
        assert_eq!(comps[1].name(), "DIST");
        assert_eq!(comps[2].name(), "TRIPLET");
        assert_eq!(
            v.vdw,
            comps[0].score(&target, &native, &target.native_torsions)
        );
        assert_eq!(
            v.dist,
            comps[1].score(&target, &native, &target.native_torsions)
        );
        assert_eq!(
            v.triplet,
            comps[2].score(&target, &native, &target.native_torsions)
        );
        assert!(v.is_finite());
    }

    #[test]
    fn clone_shares_knowledge_base_and_scores_identically() {
        let s1 = scorer();
        let s2 = s1.clone();
        let lib = BenchmarkLibrary::standard();
        let target = lib.target_by_name("3pte").unwrap();
        let builder = LoopBuilder::default();
        let native = target.build(&builder, &target.native_torsions);
        assert_eq!(
            s1.evaluate(&target, &native, &target.native_torsions),
            s2.evaluate(&target, &native, &target.native_torsions)
        );
    }
}
