//! The TRIPLET scoring function.
//!
//! "The triplet torsion angle scoring function measures the favorability of
//! torsion angle configurations based on the distribution of adjacent
//! phi-psi backbone torsion angle pairs in the context of all possible
//! triplet residue conformations derived from structural data in a large
//! loop library."  (Paper, §III.B.)
//!
//! Here the "structural data" is the synthetic [`KnowledgeBase`]; the
//! evaluation is a pure table lookup per residue, which is why it is by far
//! the cheapest of the three objectives (0.04 % of device time in the
//! paper's Table II).
//!
//! ## Why there is no wide (SIMD) variant of this kernel
//!
//! Unlike the VDW/BURIAL distance passes, this kernel has no wide-f64
//! arithmetic to exploit: per residue it is a branchy angle wrap
//! ([`torsion_bin`](crate::library::torsion_bin)), three integer bin
//! computations and one table load — gather-dominated, with the only
//! floating-point reduction being the sequential `total +=` whose
//! association is part of the bit-identity contract.  Widening the sum
//! would reassociate it; widening the lookups would serialise on the
//! gathers anyway.  The SIMD build therefore intentionally leaves TRIPLET
//! on the scalar path.

use crate::library::KnowledgeBase;
use crate::traits::ScoringFunction;
use crate::workspace::ScoreScratch;
use lms_protein::{LoopStructure, LoopTarget, RamaClass, Torsions};
use std::sync::Arc;

/// Triplet torsion-angle statistical potential.
#[derive(Debug, Clone)]
pub struct TripletScore {
    kb: Arc<KnowledgeBase>,
}

impl TripletScore {
    /// Create the scoring function over a pre-built knowledge base.
    pub fn new(kb: Arc<KnowledgeBase>) -> Self {
        TripletScore { kb }
    }

    /// Score directly from torsions and the residue-class sequence; exposed
    /// so the sampler can evaluate without a built structure when only this
    /// objective is needed.
    pub fn score_torsions(&self, classes: &[RamaClass], torsions: &Torsions) -> f64 {
        let n = classes.len();
        debug_assert_eq!(torsions.n_residues(), n);
        let mut total = 0.0;
        for i in 0..n {
            // Terminal residues take the loop anchor (general class) as
            // their missing neighbour.
            let prev = if i == 0 {
                RamaClass::General
            } else {
                classes[i - 1]
            };
            let next = if i + 1 == n {
                RamaClass::General
            } else {
                classes[i + 1]
            };
            total +=
                self.kb
                    .triplet
                    .energy(prev, classes[i], next, torsions.phi(i), torsions.psi(i));
        }
        total / n as f64
    }
}

impl ScoringFunction for TripletScore {
    fn name(&self) -> &'static str {
        "TRIPLET"
    }

    fn score_with(
        &self,
        target: &LoopTarget,
        _structure: &LoopStructure,
        torsions: &Torsions,
        scratch: &mut ScoreScratch,
    ) -> f64 {
        // Stage the residue classes in the reusable scratch buffer instead
        // of collecting a fresh Vec per evaluation.
        scratch.classes.clear();
        scratch
            .classes
            .extend(target.sequence.iter().map(|aa| aa.rama_class()));
        self.score_torsions(&scratch.classes, torsions)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::library::KnowledgeBaseConfig;
    use lms_geometry::deg_to_rad;
    use lms_protein::{BenchmarkLibrary, LoopBuilder};

    fn scorer() -> TripletScore {
        TripletScore::new(KnowledgeBase::build(KnowledgeBaseConfig::fast()))
    }

    #[test]
    fn name_is_triplet() {
        assert_eq!(scorer().name(), "TRIPLET");
    }

    #[test]
    fn alpha_torsions_beat_disallowed_torsions() {
        let s = scorer();
        let classes = vec![RamaClass::General; 8];
        let good = Torsions::from_pairs(&[(deg_to_rad(-63.0), deg_to_rad(-43.0)); 8]);
        let bad = Torsions::from_pairs(&[(deg_to_rad(75.0), deg_to_rad(-100.0)); 8]);
        assert!(s.score_torsions(&classes, &good) < s.score_torsions(&classes, &bad) - 1.0);
    }

    #[test]
    fn native_scores_better_than_random_on_benchmark_target() {
        let s = scorer();
        let lib = BenchmarkLibrary::standard();
        let target = lib.target_by_name("1cex").unwrap();
        let builder = LoopBuilder::default();
        let native_struct = target.build(&builder, &target.native_torsions);
        let native_score = s.score(&target, &native_struct, &target.native_torsions);

        // A torsion vector drawn uniformly at random is overwhelmingly
        // likely to fall outside the allowed basins somewhere.
        let n = target.n_residues();
        let uniform = Torsions::from_pairs(
            &(0..n)
                .map(|i| {
                    (
                        deg_to_rad(160.0 - 40.0 * i as f64),
                        deg_to_rad(-170.0 + 37.0 * i as f64),
                    )
                })
                .collect::<Vec<_>>(),
        );
        let uniform_struct = target.build(&builder, &uniform);
        let uniform_score = s.score(&target, &uniform_struct, &uniform);
        assert!(
            native_score < uniform_score,
            "native {native_score} should beat arbitrary {uniform_score}"
        );
    }

    #[test]
    fn score_is_per_residue_normalised() {
        let s = scorer();
        // Same torsions, different lengths: per-residue normalisation keeps
        // the scores on a comparable scale.
        let short = vec![RamaClass::General; 4];
        let long = vec![RamaClass::General; 16];
        let t_short = Torsions::from_pairs(&[(deg_to_rad(-63.0), deg_to_rad(-43.0)); 4]);
        let t_long = Torsions::from_pairs(&vec![(deg_to_rad(-63.0), deg_to_rad(-43.0)); 16]);
        let a = s.score_torsions(&short, &t_short);
        let b = s.score_torsions(&long, &t_long);
        // Interior residues all have identical contexts; only the two
        // termini differ, so the per-residue scores are close.
        assert!((a - b).abs() < 1.0, "{a} vs {b}");
    }

    #[test]
    fn deterministic_scoring() {
        let s = scorer();
        let classes = vec![RamaClass::General, RamaClass::Glycine, RamaClass::Proline];
        let t = Torsions::from_pairs(&[
            (deg_to_rad(-70.0), deg_to_rad(140.0)),
            (deg_to_rad(80.0), deg_to_rad(10.0)),
            (deg_to_rad(-65.0), deg_to_rad(150.0)),
        ]);
        assert_eq!(
            s.score_torsions(&classes, &t),
            s.score_torsions(&classes, &t)
        );
    }
}
