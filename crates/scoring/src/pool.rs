//! A shared pool of [`ScoreScratch`] workspaces.
//!
//! The batch job engine runs many trajectories over the lifetime of one
//! process; each trajectory needs one scratch per population member.  The
//! pool lets consecutive (and concurrent) jobs on the same engine reuse the
//! buffers a finished job warmed up instead of re-allocating them: a worker
//! [`acquire`](ScratchPool::acquire)s scratches when a job starts and
//! [`release`](ScratchPool::release)s them when it ends.
//!
//! Pooled reuse never changes results: every evaluation `clear()`s the
//! scratch before filling it, so only the *capacity* (and therefore the
//! allocation count) differs between a fresh and a recycled scratch — the
//! same argument that makes the workspace path bit-identical to the legacy
//! allocating path.

use crate::workspace::ScoreScratch;
use parking_lot::Mutex;

/// A thread-safe free list of [`ScoreScratch`] workspaces.
///
/// Scratches are handed out most-recently-returned first (warm buffers
/// first), and the pool grows on demand: an empty pool simply creates a
/// fresh pre-sized scratch.
#[derive(Debug, Default)]
pub struct ScratchPool {
    free: Mutex<Vec<ScoreScratch>>,
}

impl ScratchPool {
    /// Create an empty pool.
    pub fn new() -> Self {
        ScratchPool::default()
    }

    /// Take one scratch from the pool, or create one pre-sized for a loop
    /// of `n_residues` when the pool is empty.  A recycled scratch may have
    /// been warmed on a different target; its first evaluation on the new
    /// target re-sizes the buffers and every later one is allocation-free.
    pub fn acquire(&self, n_residues: usize) -> ScoreScratch {
        self.free
            .lock()
            .pop()
            .unwrap_or_else(|| ScoreScratch::for_loop_len(n_residues))
    }

    /// Return one scratch to the pool for reuse.
    pub fn release(&self, scratch: ScoreScratch) {
        self.free.lock().push(scratch);
    }

    /// Return many scratches to the pool at once (e.g. a whole population's
    /// worth when a trajectory finishes).
    pub fn release_all<I: IntoIterator<Item = ScoreScratch>>(&self, scratches: I) {
        self.free.lock().extend(scratches);
    }

    /// Number of scratches currently parked in the pool.
    pub fn idle_count(&self) -> usize {
        self.free.lock().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn acquire_from_empty_pool_presizes_for_the_loop() {
        let pool = ScratchPool::new();
        assert_eq!(pool.idle_count(), 0);
        let s = pool.acquire(12);
        assert!(s.site_x.capacity() >= 60);
    }

    #[test]
    fn released_scratches_are_recycled_warm() {
        let pool = ScratchPool::new();
        let mut s = pool.acquire(8);
        s.site_x.extend_from_slice(&[1.0; 100]);
        let cap = s.site_x.capacity();
        pool.release(s);
        assert_eq!(pool.idle_count(), 1);
        let recycled = pool.acquire(8);
        assert_eq!(pool.idle_count(), 0);
        assert!(
            recycled.site_x.capacity() >= cap,
            "recycled scratch lost its warm capacity"
        );
    }

    #[test]
    fn release_all_parks_a_population() {
        let pool = ScratchPool::new();
        let scratches: Vec<_> = (0..16).map(|_| pool.acquire(4)).collect();
        pool.release_all(scratches);
        assert_eq!(pool.idle_count(), 16);
    }
}
