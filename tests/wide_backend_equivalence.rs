//! Property tests pinning the arch-gated wide backends to the portable
//! reference.
//!
//! The vendored `wide` crate routes every `f64x4` operation through one of
//! four backends selected at compile time (AVX2, SSE2, NEON, portable
//! scalar).  All of them promise the same per-lane IEEE-754
//! correctly-rounded semantics — the whole bit-identity story of the SIMD
//! pipeline rests on that promise — so here the *active* backend (whatever
//! this build compiled in, reported by `wide::compiled_isa()`) is driven
//! through randomized operation sequences and compared bit-for-bit against
//! the always-available [`wide::portable`] reference functions, including
//! NaN, ±∞, signed-zero and subnormal lanes.
//!
//! On an x86_64 host without `-Ctarget-cpu=native` this exercises the SSE2
//! backend; the CI native pass re-runs it against AVX2, and the aarch64
//! cross-check compiles the NEON backend against the same reference.

#![cfg(feature = "simd")]
// The binary operator impls are themselves under test here; rewriting
// `a = a + b` to `a += b` would route around the surface being pinned.
#![allow(clippy::assign_op_pattern)]

use proptest::prelude::*;
use wide::{f64x4, portable};

/// One lane value: mostly finite magnitudes across the dynamic range,
/// spiked with every IEEE special the kernels can encounter.
fn arb_lane() -> impl Strategy<Value = f64> {
    (0..16i32, -1e9..1e9f64).prop_map(|(kind, v)| match kind {
        0 => f64::NAN,
        1 => f64::INFINITY,
        2 => f64::NEG_INFINITY,
        3 => 0.0,
        4 => -0.0,
        5 => 5e-324,
        6 => 1e300,
        7 => v * 1e-21,
        _ => v,
    })
}

fn arb_lanes() -> impl Strategy<Value = [f64; 4]> {
    (arb_lane(), arb_lane(), arb_lane(), arb_lane()).prop_map(|(a, b, c, d)| [a, b, c, d])
}

/// An elementwise operation applied to the running accumulator.
#[derive(Debug, Clone, Copy)]
enum Op {
    Add([f64; 4]),
    Sub([f64; 4]),
    Mul([f64; 4]),
    Div([f64; 4]),
    Neg,
    Sqrt,
}

fn arb_op() -> impl Strategy<Value = Op> {
    (0..6i32, arb_lanes()).prop_map(|(kind, rhs)| match kind {
        0 => Op::Add(rhs),
        1 => Op::Sub(rhs),
        2 => Op::Mul(rhs),
        3 => Op::Div(rhs),
        4 => Op::Neg,
        _ => Op::Sqrt,
    })
}

fn bits(lanes: [f64; 4]) -> [u64; 4] {
    lanes.map(f64::to_bits)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    // Random op sequences through the active backend match the portable
    // reference bit-for-bit on every intermediate value.  The binary
    // operator impls are the surface under test, so no `+=` sugar here.
    #[test]
    fn active_backend_matches_portable_on_op_sequences(
        seed in arb_lanes(),
        ops in prop::collection::vec(arb_op(), 24),
    ) {
        let mut active = f64x4::from_array(seed);
        let mut reference = seed;
        for (step, op) in ops.iter().enumerate() {
            match *op {
                Op::Add(rhs) => {
                    active = active + f64x4::from_array(rhs);
                    reference = portable::add(reference, rhs);
                }
                Op::Sub(rhs) => {
                    active = active - f64x4::from_array(rhs);
                    reference = portable::sub(reference, rhs);
                }
                Op::Mul(rhs) => {
                    active = active * f64x4::from_array(rhs);
                    reference = portable::mul(reference, rhs);
                }
                Op::Div(rhs) => {
                    active = active / f64x4::from_array(rhs);
                    reference = portable::div(reference, rhs);
                }
                Op::Neg => {
                    active = -active;
                    reference = portable::neg(reference);
                }
                Op::Sqrt => {
                    active = active.sqrt();
                    reference = portable::sqrt(reference);
                }
            }
            prop_assert!(
                bits(active.to_array()) == bits(reference),
                "step {} ({:?}) diverged on isa {}: {:?} vs {:?}",
                step,
                op,
                wide::compiled_isa().name(),
                active.to_array(),
                reference
            );
        }
    }

    // The comparison bitmasks of the active backend match both the
    // portable reference and the scalar comparison operators (ordered,
    // quiet: false on NaN) lane by lane.
    #[test]
    fn active_backend_comparison_masks_match_scalar(
        a in arb_lanes(),
        b in arb_lanes(),
    ) {
        let wa = f64x4::from_array(a);
        let wb = f64x4::from_array(b);
        let scalar_mask = |cmp: &dyn Fn(f64, f64) -> bool| -> u32 {
            (0..4).map(|l| (cmp(a[l], b[l]) as u32) << l).sum()
        };
        prop_assert_eq!(wa.gt_bitmask(wb), scalar_mask(&|x, y| x > y));
        prop_assert_eq!(wa.lt_bitmask(wb), scalar_mask(&|x, y| x < y));
        prop_assert_eq!(wa.le_bitmask(wb), scalar_mask(&|x, y| x <= y));
        prop_assert_eq!(wa.gt_bitmask(wb), portable::gt_bitmask(a, b));
        prop_assert_eq!(wa.lt_bitmask(wb), portable::lt_bitmask(a, b));
        prop_assert_eq!(wa.le_bitmask(wb), portable::le_bitmask(a, b));
    }
}

/// The ISA self-report is consistent: the compiled backend is one of the
/// four known ones, and the dispatch summary agrees with runtime
/// detection.
#[test]
fn isa_report_is_coherent() {
    let compiled = wide::compiled_isa();
    let summary = wide::dispatch_summary();
    match compiled {
        wide::Isa::Avx2 => assert_eq!(summary, "avx2"),
        wide::Isa::Sse2 => {
            if wide::runtime_avx2() {
                assert_eq!(summary, "sse2+avx2");
            } else {
                assert_eq!(summary, "sse2");
            }
        }
        wide::Isa::Neon => assert_eq!(summary, "neon"),
        wide::Isa::Portable => assert_eq!(summary, "portable"),
    }
}
