//! Property-based tests across crate boundaries: whatever torsions the
//! sampler proposes, the geometric and scoring invariants must hold.

use lms_closure::{CcdCloser, CcdConfig};
use lms_core::{fitness_against, fitness_assignment, non_dominated_indices};
use lms_geometry::wrap_rad;
use lms_protein::{BenchmarkLibrary, LoopBuilder, LoopTarget, Torsions};
use lms_scoring::{KnowledgeBase, KnowledgeBaseConfig, MultiScorer, ScoreVector};
use proptest::prelude::*;
use std::sync::OnceLock;

fn shared_target() -> &'static LoopTarget {
    static TARGET: OnceLock<LoopTarget> = OnceLock::new();
    TARGET.get_or_init(|| BenchmarkLibrary::standard().target_by_name("5pti").unwrap())
}

fn shared_scorer() -> &'static MultiScorer {
    static SCORER: OnceLock<MultiScorer> = OnceLock::new();
    SCORER.get_or_init(|| MultiScorer::new(KnowledgeBase::build(KnowledgeBaseConfig::fast())))
}

fn arb_torsions(n_residues: usize) -> impl Strategy<Value = Torsions> {
    prop::collection::vec(-std::f64::consts::PI..std::f64::consts::PI, 2 * n_residues)
        .prop_map(Torsions::from_flat)
}

fn arb_scores(n: usize) -> impl Strategy<Value = Vec<ScoreVector>> {
    prop::collection::vec((0.0..10.0f64, 0.0..10.0f64, 0.0..10.0f64), n).prop_map(|v| {
        v.into_iter()
            .map(|(a, b, c)| ScoreVector::new(a, b, c))
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn ccd_never_worsens_closure_and_preserves_geometry(torsions in arb_torsions(11)) {
        let target = shared_target();
        let builder = LoopBuilder::default();
        let closer = CcdCloser::new(
            builder,
            CcdConfig::new().with_max_sweeps(32).with_tolerance(0.2),
        );
        let mut t = torsions.clone();
        let result = closer.close(&target.frame, &target.sequence, &mut t);
        prop_assert!(result.final_deviation <= result.initial_deviation + 1e-9);
        // The closed structure still has ideal covalent geometry (torsion
        // moves cannot stretch bonds).
        let s = target.build(&builder, &t);
        let g = *builder.geometry();
        for r in &s.residues {
            prop_assert!((r.n.distance(r.ca) - g.len_n_ca).abs() < 1e-9);
            prop_assert!((r.ca.distance(r.c) - g.len_ca_c).abs() < 1e-9);
        }
        // Torsions remain in the canonical range.
        for k in 0..t.n_angles() {
            let a = t.angle(k);
            prop_assert!((wrap_rad(a) - a).abs() < 1e-12);
        }
    }

    #[test]
    fn scoring_any_conformation_is_finite_and_nonnegative_vdw(torsions in arb_torsions(11)) {
        let target = shared_target();
        let builder = LoopBuilder::default();
        let structure = target.build(&builder, &torsions);
        let scores = shared_scorer().evaluate(target, &structure, &torsions);
        prop_assert!(scores.is_finite(), "scores {scores}");
        prop_assert!(scores.vdw() >= 0.0, "soft-sphere score cannot be negative");
        // Scoring is a pure function.
        let again = shared_scorer().evaluate(target, &structure, &torsions);
        prop_assert_eq!(scores, again);
    }

    #[test]
    fn fitness_assignment_respects_front_partition(scores in arb_scores(12)) {
        let fitness = fitness_assignment(&scores);
        let front = non_dominated_indices(&scores);
        for (i, fit) in fitness.iter().enumerate() {
            if front.contains(&i) {
                prop_assert!(*fit < 1.0, "front member {} has fitness {}", i, fit);
            } else {
                prop_assert!(*fit >= 1.0, "dominated member {} has fitness {}", i, fit);
            }
        }
        // Dominance implies better (lower) fitness.
        for i in 0..scores.len() {
            for j in 0..scores.len() {
                if scores[i].dominates(&scores[j]) {
                    prop_assert!(fitness[i] <= fitness[j] + 1e-12);
                }
            }
        }
    }

    #[test]
    fn candidate_fitness_is_consistent_with_dominance(
        scores in arb_scores(8),
        cand in (0.0..10.0f64, 0.0..10.0f64, 0.0..10.0f64)
    ) {
        let candidate = ScoreVector::new(cand.0, cand.1, cand.2);
        let f = fitness_against(&candidate, &scores);
        let dominated_by_any = scores.iter().any(|s| s.dominates(&candidate));
        if dominated_by_any {
            prop_assert!(f >= 1.0);
        } else {
            prop_assert!(f < 1.0);
        }
    }

    #[test]
    fn rmsd_to_native_is_zero_only_for_native(perturb in 0.05..1.0f64) {
        let target = shared_target();
        let builder = LoopBuilder::default();
        let mut t = target.native_torsions.clone();
        // Perturb one torsion by a bounded amount.
        t.rotate_angle(3, perturb);
        let s = target.build(&builder, &t);
        let rmsd = target.rmsd_to_native(&s);
        prop_assert!(rmsd > 0.0);
        let native = target.build(&builder, &target.native_torsions);
        prop_assert!(target.rmsd_to_native(&native) < 1e-9);
    }
}
