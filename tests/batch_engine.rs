//! Integration tests of the batch job engine through the facade prelude:
//! the bit-identity contract (an N-job batch equals N sequential sampler
//! runs), cooperative cancellation, streaming delivery, and the typed
//! error surface.

use lms::prelude::*;
use proptest::prelude::*;
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

/// The benchmark loops batched jobs cycle through (different lengths, so
/// jobs genuinely differ).
const NAMES: [&str; 3] = ["1cex", "5pti", "3pte"];

fn shared_kb() -> Arc<KnowledgeBase> {
    static KB: OnceLock<Arc<KnowledgeBase>> = OnceLock::new();
    Arc::clone(KB.get_or_init(|| KnowledgeBase::build(KnowledgeBaseConfig::fast())))
}

fn shared_engine() -> &'static LoopModelingEngine {
    static ENGINE: OnceLock<LoopModelingEngine> = OnceLock::new();
    ENGINE.get_or_init(|| {
        LoopModelingEngine::builder(shared_kb())
            .executor(ExecutorConfig::parallel())
            .concurrency(3)
            .build()
            .expect("valid engine config")
    })
}

fn small_config(seed: u64) -> SamplerConfig {
    SamplerConfig::builder()
        .population_size(12)
        .n_complexes(2)
        .iterations(2)
        .seed(seed)
        .build()
        .expect("valid test config")
}

fn job_for(name: &str, seed: u64) -> Job {
    let target = BenchmarkLibrary::standard()
        .target_by_name(name)
        .expect("benchmark target");
    Job::builder(target)
        .config(small_config(seed))
        .seed(seed)
        .build()
        .expect("valid job")
}

// The acceptance contract: whatever seeds the jobs carry, running them as
// one concurrent batch produces bit-identical trajectories to running each
// through `MoscemSampler::run_with_seed` on its own.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    #[test]
    fn batch_is_bit_identical_to_sequential_runs(raw_seeds in prop::collection::vec(0usize..100_000, 4)) {
        let seeds: Vec<u64> = raw_seeds.iter().map(|&s| s as u64).collect();
        let engine = shared_engine();
        let jobs: Vec<Job> = seeds
            .iter()
            .enumerate()
            .map(|(i, &seed)| job_for(NAMES[i % NAMES.len()], seed))
            .collect();
        let results = engine.submit(jobs).join();
        prop_assert_eq!(results.len(), seeds.len());

        for (i, (result, &seed)) in results.iter().zip(seeds.iter()).enumerate() {
            prop_assert_eq!(result.seed, seed);
            let batched = match &result.outcome {
                Ok(t) => t,
                Err(e) => return Err(TestCaseError::Fail(format!("job {i} failed: {e}"))),
            };
            let target = BenchmarkLibrary::standard()
                .target_by_name(NAMES[i % NAMES.len()])
                .unwrap();
            let sampler = MoscemSampler::try_new(target, shared_kb(), small_config(seed))
                .expect("valid config");
            let reference = sampler.run_with_seed(&ExecutorConfig::parallel().build().expect("valid executor config"), seed);
            prop_assert_eq!(batched.population.len(), reference.population.len());
            for (a, b) in batched.population.iter().zip(reference.population.iter()) {
                prop_assert_eq!(&a.torsions, &b.torsions);
                prop_assert_eq!(a.scores, b.scores);
                prop_assert_eq!(a.fitness, b.fitness);
                prop_assert_eq!(a.rmsd_to_native, b.rmsd_to_native);
                prop_assert_eq!(a.accepted_moves, b.accepted_moves);
            }
            prop_assert_eq!(batched.acceptance_rate, reference.acceptance_rate);
            prop_assert_eq!(batched.final_temperature, reference.final_temperature);
        }
    }
}

#[test]
fn cancelled_job_stops_while_the_rest_of_the_batch_completes() {
    let engine = LoopModelingEngine::builder(shared_kb())
        .executor(ExecutorConfig::parallel())
        .concurrency(2)
        .build()
        .expect("valid engine config");

    // One job long enough that it cannot finish before the cancel lands
    // (it is stopped at an iteration boundary), plus three normal jobs.
    let marathon_iterations = 50_000;
    let marathon = {
        let target = BenchmarkLibrary::standard().target_by_name("1cex").unwrap();
        Job::builder(target)
            .config(
                SamplerConfig::builder()
                    .population_size(16)
                    .n_complexes(2)
                    .iterations(marathon_iterations)
                    .build()
                    .unwrap(),
            )
            .label("marathon")
            .build()
            .unwrap()
    };
    let mut jobs = vec![marathon];
    jobs.extend(NAMES.iter().enumerate().map(|(i, n)| job_for(n, i as u64)));
    let handle = engine.submit(jobs);
    let marathon_id = handle.job_ids()[0];

    // Wait until the marathon is actually running, then cancel it.
    let deadline = Instant::now() + Duration::from_secs(30);
    while handle.progress()[0].status == JobStatus::Queued && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(5));
    }
    assert!(handle.cancel(marathon_id), "cancel should reach a live job");

    let results = handle.join();
    assert_eq!(results.len(), 4);
    let cancelled = &results[0];
    assert_eq!(cancelled.id, marathon_id);
    assert!(cancelled.is_cancelled());
    match &cancelled.outcome {
        Err(Error::Cancelled {
            completed_iterations,
        }) => assert!(
            *completed_iterations < marathon_iterations,
            "cancelled job claims to have finished all iterations"
        ),
        other => panic!("expected Cancelled, got {other:?}"),
    }
    // Every other job finished normally.
    for result in &results[1..] {
        let trajectory = result.outcome.as_ref().expect("short jobs must complete");
        assert_eq!(trajectory.population.len(), 12);
    }
    // Terminal statuses are reflected in the progress snapshot.
    // (The handle was consumed by join; re-check through a fresh batch.)
}

#[test]
fn results_stream_in_completion_order_with_live_progress() {
    let engine = shared_engine();
    let jobs: Vec<Job> = (0..3).map(|i| job_for(NAMES[i], 400 + i as u64)).collect();
    let mut handle = engine.submit(jobs);
    let mut seen = 0;
    while let Some(result) = handle.next_result() {
        seen += 1;
        assert!(result.outcome.is_ok());
        // Progress snapshots stay coherent while streaming.
        for p in handle.progress() {
            assert!(p.iterations_done <= p.total_iterations);
        }
    }
    assert_eq!(seen, 3);
    assert!(handle.next_result().is_none(), "stream must terminate");
}

#[test]
fn typed_errors_surface_through_the_facade() {
    // Builder rejects impossible configs with a specific variant…
    let err = SamplerConfig::builder()
        .population_size(4)
        .n_complexes(9)
        .build()
        .unwrap_err();
    assert!(matches!(
        err,
        ConfigError::ComplexesExceedPopulation {
            n_complexes: 9,
            population_size: 4
        }
    ));
    // …that displays the offending values and converts into the run error.
    assert!(err.to_string().contains('9'));
    let run_err: Error = err.into();
    assert!(std::error::Error::source(&run_err).is_some());

    // try_new propagates the same typed error instead of panicking.  (The
    // struct is #[non_exhaustive], so the fields stay writable even though
    // literal construction must go through the builder.)
    let target = BenchmarkLibrary::standard().target_by_name("1cex").unwrap();
    let mut cfg = SamplerConfig::default();
    cfg.population_size = 0;
    let err = MoscemSampler::try_new(target, shared_kb(), cfg).unwrap_err();
    assert_eq!(err, ConfigError::ZeroPopulation);
}
