//! Reproducibility guarantees across the whole stack: identical seeds give
//! identical results regardless of executor or repetition, and different
//! seeds explore different conformations.

use lms_core::{MoscemSampler, SamplerConfig};
use lms_protein::BenchmarkLibrary;
use lms_scoring::{KnowledgeBase, KnowledgeBaseConfig};
use lms_simt::ExecutorConfig;
use std::sync::Arc;

fn kb() -> Arc<KnowledgeBase> {
    KnowledgeBase::build(KnowledgeBaseConfig::fast())
}

fn config(seed: u64) -> SamplerConfig {
    SamplerConfig::builder()
        .population_size(32)
        .n_complexes(2)
        .iterations(5)
        .seed(seed)
        .build()
        .expect("valid test config")
}

#[test]
fn identical_runs_are_bitwise_identical() {
    let target = BenchmarkLibrary::standard().target_by_name("1dim").unwrap();
    let sampler = MoscemSampler::new(target, kb(), config(77));
    let a = sampler.run(&ExecutorConfig::parallel().build().unwrap());
    let b = sampler.run(&ExecutorConfig::parallel().build().unwrap());
    for (x, y) in a.population.iter().zip(b.population.iter()) {
        assert_eq!(x.torsions, y.torsions);
        assert_eq!(x.scores, y.scores);
        assert_eq!(x.fitness, y.fitness);
        assert_eq!(x.rmsd_to_native, y.rmsd_to_native);
    }
    assert_eq!(a.acceptance_rate, b.acceptance_rate);
    assert_eq!(a.final_temperature, b.final_temperature);
}

#[test]
fn executor_choice_does_not_change_the_science() {
    // The paper could only claim "functional equivalence" between its CPU
    // and GPU versions; our per-stream RNG discipline gives exact equality.
    let target = BenchmarkLibrary::standard().target_by_name("153l").unwrap();
    let sampler = MoscemSampler::new(target, kb(), config(3));
    let scalar = sampler.run(&ExecutorConfig::scalar().build().unwrap());
    let parallel = sampler.run(&ExecutorConfig::parallel().build().unwrap());
    let two_threads = sampler.run(&ExecutorConfig::parallel().threads(2).build().unwrap());
    for ((a, b), c) in scalar
        .population
        .iter()
        .zip(parallel.population.iter())
        .zip(two_threads.population.iter())
    {
        assert_eq!(a.torsions, b.torsions);
        assert_eq!(a.torsions, c.torsions);
        assert_eq!(a.scores, b.scores);
        assert_eq!(a.scores, c.scores);
    }
}

#[test]
fn different_seeds_explore_differently_but_same_benchmark() {
    let library = BenchmarkLibrary::standard();
    let t1 = library.target_by_name("1cex").unwrap();
    let t2 = library.target_by_name("1cex").unwrap();
    // The benchmark target itself is identical across instantiations…
    assert_eq!(t1.native_torsions, t2.native_torsions);
    assert_eq!(t1.sequence, t2.sequence);
    // …while different sampler seeds give different trajectories.
    let s1 =
        MoscemSampler::new(t1, kb(), config(1)).run(&ExecutorConfig::parallel().build().unwrap());
    let s2 =
        MoscemSampler::new(t2, kb(), config(2)).run(&ExecutorConfig::parallel().build().unwrap());
    let same = s1
        .population
        .iter()
        .zip(s2.population.iter())
        .filter(|(a, b)| a.torsions == b.torsions)
        .count();
    assert!(
        same < s1.population.len() / 2,
        "{same} of {} members identical across different seeds",
        s1.population.len()
    );
}

#[test]
fn decoy_production_is_reproducible() {
    let target = BenchmarkLibrary::standard().target_by_name("1bhe").unwrap();
    let sampler = MoscemSampler::new(target, kb(), config(55));
    let a = sampler.produce_decoys(&ExecutorConfig::parallel().build().unwrap(), 20, 3);
    let b = sampler.produce_decoys(&ExecutorConfig::parallel().build().unwrap(), 20, 3);
    assert_eq!(a.decoys.len(), b.decoys.len());
    assert_eq!(a.trajectories_run, b.trajectories_run);
    for (x, y) in a.decoys.decoys().iter().zip(b.decoys.decoys().iter()) {
        assert_eq!(x.torsions, y.torsions);
        assert_eq!(x.rmsd_to_native, y.rmsd_to_native);
    }
}
