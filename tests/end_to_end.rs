//! End-to-end integration tests spanning every crate: benchmark target
//! generation → knowledge base → CCD closure → multi-scoring MOSCEM
//! sampling → decoy harvesting → analysis.

use lms_closure::{CcdCloser, CcdConfig};
use lms_core::{MoscemSampler, ObjectiveMode, SamplerConfig};
use lms_decoys::{cluster_decoys, distinct_non_dominated, ClusterMetric};
use lms_protein::{BenchmarkLibrary, LoopBuilder};
use lms_scoring::{KnowledgeBase, KnowledgeBaseConfig, MultiScorer, Objective};
use lms_simt::{ExecutorConfig, KernelKind};
use std::sync::Arc;

fn fast_kb() -> Arc<KnowledgeBase> {
    KnowledgeBase::build(KnowledgeBaseConfig::fast())
}

fn small_config(population: usize, iterations: usize, seed: u64) -> SamplerConfig {
    SamplerConfig::builder()
        .population_size(population)
        .n_complexes((population / 16).max(1))
        .iterations(iterations)
        .seed(seed)
        .build()
        .expect("valid test config")
}

#[test]
fn full_pipeline_produces_reasonable_decoys() {
    let target = BenchmarkLibrary::standard().target_by_name("1cex").unwrap();
    let sampler = MoscemSampler::new(target.clone(), fast_kb(), small_config(64, 10, 1));
    let production = sampler.produce_decoys(&ExecutorConfig::parallel().build().unwrap(), 30, 4);

    assert!(!production.decoys.is_empty(), "no decoys harvested");
    let best = production.decoys.best_rmsd().unwrap();
    assert!(best.is_finite());
    assert!(
        best < 6.0,
        "even a small run should find something within 6 A of a 12-residue native; got {best}"
    );

    // Every decoy closes the loop and has finite scores.
    let builder = LoopBuilder::default();
    for d in production.decoys.decoys() {
        let s = target.build(&builder, &d.torsions);
        assert!(target.closure_deviation(&s) < 1.0, "decoy badly unclosed");
        assert!(d.scores.is_finite());
    }

    // Decoys form at least one structural cluster and clustering covers all.
    let clusters = cluster_decoys(
        &target,
        production.decoys.decoys(),
        ClusterMetric::TorsionDeg,
        30.0,
    );
    let members: usize = clusters.iter().map(|c| c.size()).sum();
    assert_eq!(members, production.decoys.len());
}

#[test]
fn native_scores_are_pareto_competitive() {
    // The native conformation should not be dominated by a typical random
    // closed conformation — the premise that makes multi-scoring sampling
    // able to find native-like decoys at the front.
    let kb = fast_kb();
    let scorer = MultiScorer::new(kb);
    let builder = LoopBuilder::default();
    let closer = CcdCloser::new(builder, CcdConfig::default());
    let library = BenchmarkLibrary::standard();

    for name in ["1cex", "5pti", "3pte"] {
        let target = library.target_by_name(name).unwrap();
        let native_structure = target.build(&builder, &target.native_torsions);
        let native_scores = scorer.evaluate(&target, &native_structure, &target.native_torsions);

        let mut dominated_count = 0;
        let trials = 6;
        for seed in 0..trials {
            let mut rng = lms_geometry::StreamRngFactory::new(seed).stream(0, 0);
            let mut torsions = lms_protein::Torsions::zeros(target.n_residues());
            for k in 0..torsions.n_angles() {
                torsions.set_angle(k, lms_geometry::random_torsion(&mut rng));
            }
            closer.close(&target.frame, &target.sequence, &mut torsions);
            let structure = target.build(&builder, &torsions);
            let scores = scorer.evaluate(&target, &structure, &torsions);
            if scores.dominates(&native_scores) {
                dominated_count += 1;
            }
        }
        assert!(
            dominated_count <= 1,
            "{name}: native dominated by {dominated_count}/{trials} random closed loops"
        );
    }
}

#[test]
fn sampling_with_more_iterations_does_not_regress() {
    let target = BenchmarkLibrary::standard().target_by_name("5pti").unwrap();
    let kb = fast_kb();
    let short = MoscemSampler::new(target.clone(), kb.clone(), small_config(48, 2, 9));
    let long = MoscemSampler::new(target, kb, small_config(48, 12, 9));
    let short_result = short.run(&ExecutorConfig::parallel().build().unwrap());
    let long_result = long.run(&ExecutorConfig::parallel().build().unwrap());
    // RMSD is never used for acceptance, so the single best member can
    // drift; what must hold is that both runs stay in a sane band for an
    // 11-residue loop started from Ramachandran-distributed torsions.
    assert!(short_result.best_rmsd().is_finite());
    assert!(
        long_result.best_rmsd() < 6.0,
        "long run best RMSD {}",
        long_result.best_rmsd()
    );
    // And keep or grow the distinct non-dominated count.
    let short_nd = distinct_non_dominated(&short_result, 30.0);
    let long_nd = distinct_non_dominated(&long_result, 30.0);
    assert!(
        long_nd + 3 >= short_nd,
        "front collapsed: {short_nd} -> {long_nd}"
    );
}

#[test]
fn multi_scoring_front_is_broader_than_single_objective() {
    // Sampling three objectives should maintain a broader non-dominated set
    // than optimising a single objective (where the "front" degenerates).
    let target = BenchmarkLibrary::standard().target_by_name("1akz").unwrap();
    let kb = fast_kb();
    let multi = MoscemSampler::new(target.clone(), kb.clone(), small_config(48, 8, 3));
    let single = MoscemSampler::new(
        target,
        kb,
        small_config(48, 8, 3)
            .to_builder()
            .objective_mode(ObjectiveMode::Single(Objective::Vdw))
            .build()
            .expect("valid test config"),
    );
    let multi_result = multi.run(&ExecutorConfig::parallel().build().unwrap());
    let single_result = single.run(&ExecutorConfig::parallel().build().unwrap());
    let multi_nd = multi_result.non_dominated_count();
    // For the single-objective run, measure spread as distinct structures
    // among its top conformations: typically much smaller.
    let single_nd = single_result.non_dominated_count();
    assert!(
        multi_nd >= single_nd,
        "multi-scoring front ({multi_nd}) should be at least as broad as single-objective ({single_nd})"
    );
}

#[test]
fn profiler_matches_table2_structure_end_to_end() {
    let target = BenchmarkLibrary::standard().target_by_name("1ixh").unwrap();
    let sampler = MoscemSampler::new(target, fast_kb(), small_config(32, 4, 11));
    let result = sampler.run(&ExecutorConfig::parallel().build().unwrap());
    let stats = result.profiler.kernel_stats();
    // Table II ordering: CCD > DIST > VDW > TRIPLET in device time.
    let t = |k: KernelKind| stats[&k].device_us;
    assert!(t(KernelKind::Ccd) > t(KernelKind::EvalDist));
    assert!(t(KernelKind::EvalDist) > t(KernelKind::EvalVdw));
    assert!(t(KernelKind::EvalVdw) > t(KernelKind::EvalTrip));
    // Call counts: every per-iteration kernel ran iterations + 1 times
    // (the +1 is the initialization launch), fitness-complex once per iteration.
    assert_eq!(stats[&KernelKind::Ccd].calls, 5);
    assert_eq!(stats[&KernelKind::FitAssgComplex].calls, 4);
    // Table III: the register-heavy kernels sit at 50% occupancy.
    let occ = result.profiler.occupancies();
    assert!((occ[&KernelKind::Ccd].occupancy - 0.5).abs() < 1e-9);
    assert!((occ[&KernelKind::FitAssgPopulation].occupancy - 1.0).abs() < 1e-9);
}
