//! # lms — GPU-accelerated multi-scoring protein loop structure sampling
//!
//! A reproduction and production-oriented extension of *"GPU-accelerated
//! multi-scoring functions protein loop structure sampling"*: the MOSCEM
//! multi-objective MCMC sampler over loop torsion space, scored by the
//! paper's three backbone scoring functions (soft-sphere VDW,
//! pairwise-distance DIST, triplet torsion TRIPLET) plus an opt-in fourth
//! solvation/burial objective, with CCD loop closure and a SIMT device
//! model.
//!
//! ## Enabling the fourth (burial) objective
//!
//! The burial term scores each residue's environment contact number against
//! its residue type's knowledge-based reference — the facet of loop quality
//! (hydrophobic burial vs polar exposure) the clash/distance/torsion trio
//! cannot see.  It is off by default; sampling with it off is bit-identical
//! to the three-objective pipeline.  Turn it on per job through the config
//! builder:
//!
//! ```
//! use lms::prelude::*;
//!
//! # fn main() -> Result<(), ConfigError> {
//! let config = SamplerConfig::builder()
//!     .population_size(16)
//!     .iterations(2)
//!     .burial_objective(true) // fourth objective: solvation/burial
//!     .build()?;
//! assert_eq!(config.active_objectives(), 4);
//! # Ok(())
//! # }
//! ```
//!
//! The evaluation reuses the VDW environment cell list — one gather per
//! site feeds both the clash sum and the burial counts — so the fourth
//! objective costs far less than a second environment sweep (see the
//! `scoring_pipeline` bench's 3-vs-4-objective comparison).
//!
//! ## The engine lifecycle: build → submit → stream → harvest
//!
//! The public API is job-oriented: a [`prelude::LoopModelingEngine`] owns
//! everything jobs share (the knowledge base, the executor, a pool of warm
//! scoring workspaces) and runs many loop-modeling [`prelude::Job`]s
//! concurrently, multiplexing the thread budget across jobs and streaming
//! [`prelude::JobResult`]s back in completion order with per-job progress
//! and cancellation.  Because every trajectory derives all randomness from
//! its own seed — never from scheduling — a batch is bit-identical to
//! running its jobs sequentially.
//!
//! ```
//! use lms::prelude::*;
//!
//! # fn main() -> Result<(), Error> {
//! // 1. Build: one engine per process, sharing the knowledge base.
//! let kb = KnowledgeBase::build(KnowledgeBaseConfig::fast());
//! let engine = LoopModelingEngine::builder(kb)
//!     .executor(ExecutorConfig::parallel())
//!     .build()?;
//!
//! // 2. Submit: one job per loop; configs are validated by the builders.
//! let library = BenchmarkLibrary::standard();
//! let config = SamplerConfig::builder()
//!     .population_size(16)
//!     .iterations(2)
//!     .build()?;
//! let jobs: Vec<Job> = ["1cex", "5pti"]
//!     .iter()
//!     .enumerate()
//!     .map(|(i, name)| {
//!         let target = library.target_by_name(name).unwrap();
//!         Job::builder(target).config(config.clone()).seed(7 + i as u64).build()
//!     })
//!     .collect::<Result<_, _>>()?;
//! let batch = engine.submit(jobs);
//!
//! // 3. Stream: results arrive as jobs finish; progress() and cancel()
//! //    are available on the handle while the batch runs.
//! for result in batch {
//!     // 4. Harvest the trajectory (or a typed error) per job.
//!     let trajectory = result.outcome?;
//!     assert_eq!(trajectory.population.len(), 16);
//!     assert!(trajectory.non_dominated_count() >= 1);
//! }
//! # Ok(())
//! # }
//! ```
//!
//! For a single trajectory, [`prelude::LoopModelingEngine::run`] executes
//! one job inline, and the lower-level [`prelude::MoscemSampler`] remains
//! available (a one-job batch and a direct sampler run produce bit-identical
//! results).
//!
//! ## Choosing an execution backend
//!
//! Executors are built through the validated [`prelude::ExecutorConfig`]
//! builder and slot in behind the same kernel-launch entry point: `scalar`
//! (sequential baseline), `parallel` (rayon thread pool), and — with the
//! `simd` cargo feature — `simd`, which runs explicit wide-`f64` lanes
//! through the hot kernels: the lane-major (member-transposed) NeRF spine
//! rebuild inside `close_batch`, the batched CCD optimal-rotation kernel,
//! the VDW/BURIAL contact gathers and the Metropolis dominance reduction
//! (the `rebuild`, `simd` and `blocks` ratios in `BENCH_ccd.json`).
//!
//! The wide lanes compile down through an **arch-gated instruction-set
//! dispatch** in the vendored `wide` shim, selected in this order: AVX2
//! intrinsics when the build targets them (`-C target-cpu=native` on a
//! modern x86_64), else SSE2 intrinsics on x86_64 / NEON intrinsics on
//! aarch64, else a portable scalar fallback on any other architecture.
//! On an SSE2-baseline x86_64 build the rebuild drive loop additionally
//! re-dispatches at **runtime** to AVX2-featured clones when the host CPU
//! supports it (reported as `"sse2+avx2"`).  Backend choice **never
//! changes sampled trajectories** (per-stream RNG discipline plus
//! bit-identical wide kernels — every ISA backend is property-tested
//! bit-for-bit against the portable reference, NaN/∞ lanes included);
//! it only changes how fast they run.  Every executor reports
//! [`prelude::Capabilities`] (backend name, lane width, thread budget,
//! CCD block width, and the detected ISA), which the profiler's Table II
//! report, the bench JSON artifacts and each [`prelude::JobResult`] carry
//! so measurements stay attributable to the instruction set that produced
//! them.
//!
//! ```
//! use lms::prelude::*;
//!
//! # fn main() -> Result<(), ConfigError> {
//! let kb = KnowledgeBase::build(KnowledgeBaseConfig::fast());
//! let engine = LoopModelingEngine::builder(kb)
//!     .executor(ExecutorConfig::parallel().threads(4).ccd_block_width(16))
//!     .build()?;
//! let caps = engine.executor().capabilities();
//! assert_eq!(caps.name, "parallel");
//! assert_eq!(caps.threads, 4);
//! assert_eq!(caps.ccd_block_width, 16);
//! // With `--features simd`: ExecutorConfig::simd() selects the wide-lane
//! // backend (lane_width 4); without the feature it is rejected at build
//! // time as ExecutorConfigError::SimdUnavailable.
//! # Ok(())
//! # }
//! ```
//!
//! ## The population-batched kernel pipeline (internal layout)
//!
//! Since PR 5 every trajectory executes as a **staged kernel pipeline over
//! a population-wide SoA member arena** — one population-wide launch per
//! stage (`mutate`, `close`, `rebuild`, `score`, `metropolis`, `select`)
//! per iteration, mirroring the paper's device execution, with lockstep
//! CCD blocks batching the optimal-rotation inner products across members.
//! This is an *internal* layout and execution-shape change with an
//! **unchanged public API**: per-(member, iteration) RNG stream discipline
//! keeps the batched pipeline bit-identical to the per-member reference
//! implementation (which remains available as
//! [`prelude::MoscemSampler::run_reference_with_seed`] and anchors the
//! equivalence property tests), while running measurably faster per
//! member-iteration — a ratio the CI perf gate tracks.
//!
//! ## Fault tolerance: deadlines, retries, health guards
//!
//! Long batches on shared hardware fail in boring ways — a job outlives
//! its time slot, a numerical kernel emits a NaN, a worker panics.  The
//! runtime makes every such failure a *typed, classified* outcome:
//!
//! | error | meaning | class |
//! |---|---|---|
//! | [`prelude::Error::Cancelled`] | cancelled via the batch handle | terminal |
//! | [`prelude::Error::DeadlineExceeded`] | [`prelude::JobLimits`] wall-clock budget spent | terminal |
//! | [`prelude::Error::Stalled`] | CCD made no progress for a configured streak | retryable |
//! | [`prelude::Error::NumericalFault`] | non-finite score/torsion/observable detected | retryable |
//! | [`prelude::Error::JobPanicked`] | a stage kernel panicked (payload captured) | retryable |
//!
//! Budgets are set per job with [`prelude::JobLimits`] on the sampler
//! config; the poisoned-value policy is [`prelude::NumericGuard`] (fail
//! fast, or quarantine the poisoned member and keep sampling).  The
//! engine's supervisor re-runs *retryable* failures with the **same
//! seed** under a bounded-backoff [`prelude::RetryPolicy`], recording
//! one [`prelude::AttemptFailure`] per failed attempt on the
//! [`prelude::JobResult`] — determinism makes the rerun bit-identical
//! up to the fault, so a transient either disappears or reproduces
//! exactly.  A deterministic fault-injection harness (seeded panics,
//! NaN poison and stalls at exact kernel-launch sites) backs all of
//! this under the `fault-injection` cargo feature; see
//! `examples/faulty_batch.rs` and the `simt` crate's `fault` module.
//!
//! ## Crates
//!
//! The facade re-exports the whole suite; the [`prelude`] is the curated
//! surface most applications need.
//!
//! | module | contents |
//! |---|---|
//! | [`core`] | engine, sampler, Pareto fitness, mutation moves, decoy sets |
//! | [`scoring`] | VDW/DIST/TRIPLET scoring, knowledge base, scratch pool |
//! | [`closure`] | CCD loop closure |
//! | [`protein`] | backbone geometry, benchmark targets, PDB I/O |
//! | [`geometry`] | vectors, rotations, dihedral math, streamed RNG |
//! | [`simt`] | executors, device model, kernel profiler |
//! | [`decoys`] | decoy clustering and ensemble statistics |

#![warn(missing_docs)]

pub use lms_closure as closure;
pub use lms_core as core;
pub use lms_decoys as decoys;
pub use lms_geometry as geometry;
pub use lms_protein as protein;
pub use lms_scoring as scoring;
pub use lms_simt as simt;

/// The curated import surface: everything a typical application needs to
/// build an engine, submit jobs, and analyse results — one `use
/// lms::prelude::*;` instead of seven crate imports.
pub mod prelude {
    pub use lms_closure::{CcdCloser, CcdConfig, CcdResult};
    pub use lms_core::{
        crowding_distances, AttemptFailure, BatchHandle, ComponentTimes, ConfigError, Decoy,
        DecoyProduction, DecoySet, EngineBuilder, Error, InitMode, IterationSnapshot, Job,
        JobBuilder, JobId, JobLimits, JobProgress, JobResult, JobStatus, LoopModelingEngine,
        MoscemSampler, MutationConfig, NumericGuard, ObjectiveMode, PoisonedLane, RetryPolicy,
        RunControls, SamplerConfig, SamplerConfigBuilder, TemperatureSchedule, TrajectoryResult,
    };
    pub use lms_decoys::{
        cluster_decoys, compare_decoy_sets, distinct_non_dominated, ensemble_stats, ClusterMetric,
    };
    pub use lms_protein::{
        parse_sequence, to_pdb, BenchmarkLibrary, Environment, LoopBuilder, LoopFrame,
        LoopStructure, LoopTarget, Torsions,
    };
    pub use lms_scoring::{
        BurialScore, KnowledgeBase, KnowledgeBaseConfig, MultiScorer, Objective, ScoreScratch,
        ScoreVector, ScratchPool, NUM_OBJECTIVES,
    };
    pub use lms_simt::{
        Backend, Capabilities, DeviceSpec, Executor, ExecutorConfig, ExecutorConfigError,
        KernelKind, KernelLaunch, LaunchConfig, Profiler, TimingModel, DEFAULT_CCD_BLOCK_WIDTH,
        MAX_CCD_BLOCK_WIDTH,
    };
    #[cfg(feature = "fault-injection")]
    pub use lms_simt::{FaultKind, FaultPlan, FaultSession, FaultSite};
}
