//! Facade crate re-exporting the loop-modeling suite.
pub use lms_closure as closure;
pub use lms_core as core;
pub use lms_decoys as decoys;
pub use lms_geometry as geometry;
pub use lms_protein as protein;
pub use lms_scoring as scoring;
pub use lms_simt as simt;
