//! Offline portable-SIMD shim: explicit wide `f64` lanes.
//!
//! This vendored crate mirrors the tiny subset of the `wide` crate's API the
//! workspace uses: a 4-lane `f64` vector with **element-wise IEEE-754
//! semantics**.  Every operation applies the corresponding scalar `f64`
//! operation independently per lane — no fused multiply-add, no
//! reassociation, no horizontal reductions — so a wide computation whose
//! per-lane operation sequence matches a scalar loop is *bit-identical* to
//! that loop.  That property is what lets the SIMD executor backend join the
//! sampler's bit-identity harness without a ULP-tolerance mode.
//!
//! The type is a `#[repr(C, align(32))]` wrapper around `[f64; 4]` with
//! `#[inline(always)]` arithmetic: LLVM reliably auto-vectorizes the
//! element-wise loops into SSE2/AVX `mulpd`/`addpd`/`subpd` on x86-64 (and
//! NEON pairs on aarch64), which are exactly the IEEE scalar operations
//! applied lane-wise — the hand-written intrinsics would emit the same
//! instructions with the same results.

#![warn(missing_docs)]

use core::ops::{Add, AddAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// Four `f64` lanes with element-wise IEEE arithmetic.
#[allow(non_camel_case_types)]
#[derive(Clone, Copy, Debug, Default, PartialEq)]
#[repr(C, align(32))]
pub struct f64x4([f64; 4]);

impl f64x4 {
    /// Number of lanes.
    pub const LANES: usize = 4;

    /// All lanes zero.
    pub const ZERO: f64x4 = f64x4([0.0; 4]);

    /// Broadcast one value to every lane.
    #[inline(always)]
    pub const fn splat(v: f64) -> f64x4 {
        f64x4([v; 4])
    }

    /// Build from an array, one value per lane.
    #[inline(always)]
    pub const fn from_array(a: [f64; 4]) -> f64x4 {
        f64x4(a)
    }

    /// Load the first four elements of a slice (panics if shorter).
    #[inline(always)]
    pub fn from_slice(s: &[f64]) -> f64x4 {
        f64x4([s[0], s[1], s[2], s[3]])
    }

    /// The lanes as an array.
    #[inline(always)]
    pub const fn to_array(self) -> [f64; 4] {
        self.0
    }

    /// Borrow the lanes as an array.
    #[inline(always)]
    pub const fn as_array_ref(&self) -> &[f64; 4] {
        &self.0
    }

    /// Element-wise square root (IEEE correctly-rounded per lane).
    #[inline(always)]
    pub fn sqrt(self) -> f64x4 {
        f64x4([
            self.0[0].sqrt(),
            self.0[1].sqrt(),
            self.0[2].sqrt(),
            self.0[3].sqrt(),
        ])
    }
}

impl From<[f64; 4]> for f64x4 {
    #[inline(always)]
    fn from(a: [f64; 4]) -> f64x4 {
        f64x4(a)
    }
}

impl From<f64x4> for [f64; 4] {
    #[inline(always)]
    fn from(v: f64x4) -> [f64; 4] {
        v.0
    }
}

macro_rules! elementwise_binop {
    ($trait:ident, $method:ident, $op:tt) => {
        impl $trait for f64x4 {
            type Output = f64x4;
            #[inline(always)]
            fn $method(self, rhs: f64x4) -> f64x4 {
                f64x4([
                    self.0[0] $op rhs.0[0],
                    self.0[1] $op rhs.0[1],
                    self.0[2] $op rhs.0[2],
                    self.0[3] $op rhs.0[3],
                ])
            }
        }
        impl $trait<f64> for f64x4 {
            type Output = f64x4;
            #[inline(always)]
            fn $method(self, rhs: f64) -> f64x4 {
                self.$method(f64x4::splat(rhs))
            }
        }
    };
}

elementwise_binop!(Add, add, +);
elementwise_binop!(Sub, sub, -);
elementwise_binop!(Mul, mul, *);

impl AddAssign for f64x4 {
    #[inline(always)]
    fn add_assign(&mut self, rhs: f64x4) {
        *self = *self + rhs;
    }
}

impl SubAssign for f64x4 {
    #[inline(always)]
    fn sub_assign(&mut self, rhs: f64x4) {
        *self = *self - rhs;
    }
}

impl MulAssign for f64x4 {
    #[inline(always)]
    fn mul_assign(&mut self, rhs: f64x4) {
        *self = *self * rhs;
    }
}

impl Neg for f64x4 {
    type Output = f64x4;
    #[inline(always)]
    fn neg(self) -> f64x4 {
        f64x4([-self.0[0], -self.0[1], -self.0[2], -self.0[3]])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lanes_are_independent_ieee_ops() {
        let a = f64x4::from_array([1.5, -2.25, 1e300, f64::MIN_POSITIVE]);
        let b = f64x4::from_array([0.3, 7.0, 1e300, 2.0]);
        let sum = (a + b).to_array();
        let dif = (a - b).to_array();
        let prod = (a * b).to_array();
        let (aa, bb) = (a.to_array(), b.to_array());
        for i in 0..4 {
            assert_eq!(sum[i].to_bits(), (aa[i] + bb[i]).to_bits());
            assert_eq!(dif[i].to_bits(), (aa[i] - bb[i]).to_bits());
            assert_eq!(prod[i].to_bits(), (aa[i] * bb[i]).to_bits());
        }
    }

    #[test]
    fn wide_dot_product_matches_scalar_bitwise() {
        // The exact pattern the CCD kernel uses: left-associated
        // (x*x' + y*y') + z*z' accumulation must match the scalar loop.
        let xs = [0.123456789, -9.87, 3.5e-5, 1e10];
        let ys = [4.0, 0.25, -1.75, 2.2];
        let zs = [-0.5, 6.125, 7.0e3, -3.25e-7];
        let wx = f64x4::from_array(xs);
        let wy = f64x4::from_array(ys);
        let wz = f64x4::from_array(zs);
        let wide = (wx * wx + wy * wy + wz * wz).to_array();
        for i in 0..4 {
            let scalar = xs[i] * xs[i] + ys[i] * ys[i] + zs[i] * zs[i];
            assert_eq!(wide[i].to_bits(), scalar.to_bits());
        }
    }

    #[test]
    fn splat_slice_and_conversions() {
        assert_eq!(f64x4::splat(2.5).to_array(), [2.5; 4]);
        let s = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(f64x4::from_slice(&s).to_array(), [1.0, 2.0, 3.0, 4.0]);
        let v: f64x4 = [9.0, 8.0, 7.0, 6.0].into();
        let back: [f64; 4] = v.into();
        assert_eq!(back, [9.0, 8.0, 7.0, 6.0]);
        assert_eq!(v.as_array_ref()[2], 7.0);
        assert_eq!(f64x4::ZERO.to_array(), [0.0; 4]);
        assert_eq!((-v).to_array(), [-9.0, -8.0, -7.0, -6.0]);
    }

    #[test]
    fn sqrt_is_correctly_rounded_per_lane() {
        let a = [2.0, 0.49, 1e-300, 144.0];
        let w = f64x4::from_array(a).sqrt().to_array();
        for i in 0..4 {
            assert_eq!(w[i].to_bits(), a[i].sqrt().to_bits());
        }
    }

    #[test]
    fn assign_ops_match() {
        let mut v = f64x4::splat(1.0);
        v += f64x4::splat(2.0);
        v *= f64x4::splat(3.0);
        v -= f64x4::splat(4.0);
        assert_eq!(v.to_array(), [5.0; 4]);
        assert_eq!((f64x4::splat(1.0) + 2.0).to_array(), [3.0; 4]);
        assert_eq!((f64x4::splat(6.0) * 0.5).to_array(), [3.0; 4]);
        assert_eq!((f64x4::splat(6.0) - 1.5).to_array(), [4.5; 4]);
    }
}
