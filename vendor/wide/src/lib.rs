//! Offline portable-SIMD shim: explicit wide `f64` lanes with arch-gated
//! intrinsics backends.
//!
//! This vendored crate mirrors the tiny subset of the `wide` crate's API the
//! workspace uses: a 4-lane `f64` vector with **element-wise IEEE-754
//! semantics**.  Every operation applies the corresponding scalar `f64`
//! operation independently per lane — no fused multiply-add, no
//! reassociation, no horizontal reductions — so a wide computation whose
//! per-lane operation sequence matches a scalar loop is *bit-identical* to
//! that loop.  That property is what lets the SIMD executor backend join the
//! sampler's bit-identity harness without a ULP-tolerance mode.
//!
//! # Backends
//!
//! The type is a `#[repr(C, align(32))]` wrapper around `[f64; 4]`.  Each
//! arithmetic operation routes through one of four backends, selected at
//! compile time by `cfg(target_arch)` / `cfg(target_feature)`:
//!
//! * [`Isa::Avx2`] — explicit 256-bit `_mm256_*` intrinsics, used when the
//!   crate is compiled with AVX2 available (`-C target-cpu=native` or
//!   `-C target-feature=+avx2` on an AVX2 machine).
//! * [`Isa::Sse2`] — explicit 128-bit `_mm_*` intrinsic pairs, the
//!   `x86_64` baseline (SSE2 is part of the x86-64 ABI).
//! * [`Isa::Neon`] — explicit `float64x2_t` intrinsic pairs on `aarch64`
//!   (NEON is mandatory there).
//! * [`Isa::Portable`] — plain element-wise scalar loops, used on every
//!   other architecture.  This backend is *always* compiled (as the public
//!   [`portable`] module) and serves as the reference implementation the
//!   intrinsics backends are property-tested against.
//!
//! All four backends are bit-identical: addition, subtraction,
//! multiplication, division and square root are IEEE correctly-rounded
//! single instructions on every ISA, negation is a sign-bit flip, and the
//! ordered-quiet comparisons agree with Rust's scalar `>`/`<`/`<=`
//! (`NaN` compares false).  The selection is therefore purely a
//! performance decision; results never depend on it.
//!
//! # Runtime detection
//!
//! Compile-time selection cannot use AVX2 on a generic `x86_64` build even
//! when the running CPU supports it.  [`detected_isa`] / [`runtime_avx2`]
//! report what the host actually has (via `is_x86_feature_detected!`), and
//! [`dispatch_summary`] condenses the compiled-vs-detected pair into a
//! static label for `Capabilities` / bench metadata.  Kernel crates use
//! [`runtime_avx2`] to select `#[target_feature(enable = "avx2")]` clones
//! of their hot loops, which re-compiles the inlined lane arithmetic with
//! the AVX ISA available (VEX encodings, three-operand forms) without
//! requiring a `-C target-cpu=native` build.

#![warn(missing_docs)]

use core::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// The reference backend: plain element-wise scalar loops.
///
/// Always compiled, on every architecture, so the intrinsics backends can
/// be property-tested against it (`lms`'s `wide_backend_equivalence`
/// proptest) and so `f64x4` keeps working on architectures without an
/// explicit backend.
pub mod portable {
    /// Element-wise `a + b`.
    #[inline(always)]
    pub fn add(a: [f64; 4], b: [f64; 4]) -> [f64; 4] {
        [a[0] + b[0], a[1] + b[1], a[2] + b[2], a[3] + b[3]]
    }

    /// Element-wise `a - b`.
    #[inline(always)]
    pub fn sub(a: [f64; 4], b: [f64; 4]) -> [f64; 4] {
        [a[0] - b[0], a[1] - b[1], a[2] - b[2], a[3] - b[3]]
    }

    /// Element-wise `a * b`.
    #[inline(always)]
    pub fn mul(a: [f64; 4], b: [f64; 4]) -> [f64; 4] {
        [a[0] * b[0], a[1] * b[1], a[2] * b[2], a[3] * b[3]]
    }

    /// Element-wise `a / b` (IEEE correctly-rounded).
    #[inline(always)]
    pub fn div(a: [f64; 4], b: [f64; 4]) -> [f64; 4] {
        [a[0] / b[0], a[1] / b[1], a[2] / b[2], a[3] / b[3]]
    }

    /// Element-wise negation (sign-bit flip, exact).
    #[inline(always)]
    pub fn neg(a: [f64; 4]) -> [f64; 4] {
        [-a[0], -a[1], -a[2], -a[3]]
    }

    /// Element-wise square root (IEEE correctly-rounded).
    #[inline(always)]
    pub fn sqrt(a: [f64; 4]) -> [f64; 4] {
        [a[0].sqrt(), a[1].sqrt(), a[2].sqrt(), a[3].sqrt()]
    }

    /// Per-lane `a > b` as a 4-bit mask (bit `i` set iff lane `i` compares
    /// greater; `NaN` compares false, as scalar `>` does).
    #[inline(always)]
    pub fn gt_bitmask(a: [f64; 4], b: [f64; 4]) -> u32 {
        (a[0] > b[0]) as u32
            | ((a[1] > b[1]) as u32) << 1
            | ((a[2] > b[2]) as u32) << 2
            | ((a[3] > b[3]) as u32) << 3
    }

    /// Per-lane `a < b` as a 4-bit mask.
    #[inline(always)]
    pub fn lt_bitmask(a: [f64; 4], b: [f64; 4]) -> u32 {
        (a[0] < b[0]) as u32
            | ((a[1] < b[1]) as u32) << 1
            | ((a[2] < b[2]) as u32) << 2
            | ((a[3] < b[3]) as u32) << 3
    }

    /// Per-lane `a <= b` as a 4-bit mask.
    #[inline(always)]
    pub fn le_bitmask(a: [f64; 4], b: [f64; 4]) -> u32 {
        (a[0] <= b[0]) as u32
            | ((a[1] <= b[1]) as u32) << 1
            | ((a[2] <= b[2]) as u32) << 2
            | ((a[3] <= b[3]) as u32) << 3
    }
}

/// 256-bit AVX backend: one `_mm256_*` instruction per operation.
/// Compiled in only when AVX2 is a compile-time target feature, so the
/// intrinsics are statically known to be available (no runtime check).
#[cfg(all(target_arch = "x86_64", target_feature = "avx2"))]
mod avx2 {
    use core::arch::x86_64::*;

    #[inline(always)]
    unsafe fn load(a: [f64; 4]) -> __m256d {
        _mm256_loadu_pd(a.as_ptr())
    }

    #[inline(always)]
    unsafe fn store(v: __m256d) -> [f64; 4] {
        let mut out = [0.0; 4];
        _mm256_storeu_pd(out.as_mut_ptr(), v);
        out
    }

    macro_rules! binop {
        ($name:ident, $intr:ident) => {
            #[inline(always)]
            pub fn $name(a: [f64; 4], b: [f64; 4]) -> [f64; 4] {
                // SAFETY: AVX2 (which implies AVX) is a compile-time
                // target feature of this module.
                unsafe { store($intr(load(a), load(b))) }
            }
        };
    }

    binop!(add, _mm256_add_pd);
    binop!(sub, _mm256_sub_pd);
    binop!(mul, _mm256_mul_pd);
    binop!(div, _mm256_div_pd);

    #[inline(always)]
    pub fn neg(a: [f64; 4]) -> [f64; 4] {
        // SAFETY: as above.  XOR with the sign mask is exactly scalar
        // negation (a pure sign-bit flip, NaN payloads preserved).
        unsafe { store(_mm256_xor_pd(load(a), _mm256_set1_pd(-0.0))) }
    }

    #[inline(always)]
    pub fn sqrt(a: [f64; 4]) -> [f64; 4] {
        // SAFETY: as above.
        unsafe { store(_mm256_sqrt_pd(load(a))) }
    }

    macro_rules! cmp {
        ($name:ident, $imm:expr) => {
            #[inline(always)]
            pub fn $name(a: [f64; 4], b: [f64; 4]) -> u32 {
                // SAFETY: as above.  Ordered-quiet compares match scalar
                // `>`/`<`/`<=`: NaN lanes compare false.
                unsafe { _mm256_movemask_pd(_mm256_cmp_pd::<$imm>(load(a), load(b))) as u32 }
            }
        };
    }

    cmp!(gt_bitmask, _CMP_GT_OQ);
    cmp!(lt_bitmask, _CMP_LT_OQ);
    cmp!(le_bitmask, _CMP_LE_OQ);
}

/// 128-bit SSE2 backend: two `_mm_*` instructions per operation.  SSE2 is
/// part of the x86-64 ABI, so this is the unconditional `x86_64` baseline
/// when AVX2 is not compiled in.
#[cfg(all(target_arch = "x86_64", not(target_feature = "avx2")))]
mod sse2 {
    use core::arch::x86_64::*;

    #[inline(always)]
    unsafe fn load(a: &[f64; 4]) -> (__m128d, __m128d) {
        (_mm_loadu_pd(a.as_ptr()), _mm_loadu_pd(a.as_ptr().add(2)))
    }

    #[inline(always)]
    unsafe fn store(lo: __m128d, hi: __m128d) -> [f64; 4] {
        let mut out = [0.0; 4];
        _mm_storeu_pd(out.as_mut_ptr(), lo);
        _mm_storeu_pd(out.as_mut_ptr().add(2), hi);
        out
    }

    macro_rules! binop {
        ($name:ident, $intr:ident) => {
            #[inline(always)]
            pub fn $name(a: [f64; 4], b: [f64; 4]) -> [f64; 4] {
                // SAFETY: SSE2 is always available on x86_64.
                unsafe {
                    let (alo, ahi) = load(&a);
                    let (blo, bhi) = load(&b);
                    store($intr(alo, blo), $intr(ahi, bhi))
                }
            }
        };
    }

    binop!(add, _mm_add_pd);
    binop!(sub, _mm_sub_pd);
    binop!(mul, _mm_mul_pd);
    binop!(div, _mm_div_pd);

    #[inline(always)]
    pub fn neg(a: [f64; 4]) -> [f64; 4] {
        // SAFETY: as above.  Sign-bit flip, exact.
        unsafe {
            let (lo, hi) = load(&a);
            let m = _mm_set1_pd(-0.0);
            store(_mm_xor_pd(lo, m), _mm_xor_pd(hi, m))
        }
    }

    #[inline(always)]
    pub fn sqrt(a: [f64; 4]) -> [f64; 4] {
        // SAFETY: as above.
        unsafe {
            let (lo, hi) = load(&a);
            store(_mm_sqrt_pd(lo), _mm_sqrt_pd(hi))
        }
    }

    macro_rules! cmp {
        ($name:ident, $intr:ident) => {
            #[inline(always)]
            pub fn $name(a: [f64; 4], b: [f64; 4]) -> u32 {
                // SAFETY: as above.  SSE2 compares are ordered (NaN lanes
                // compare false), matching scalar `>`/`<`/`<=`.
                unsafe {
                    let (alo, ahi) = load(&a);
                    let (blo, bhi) = load(&b);
                    let lo = _mm_movemask_pd($intr(alo, blo)) as u32;
                    let hi = _mm_movemask_pd($intr(ahi, bhi)) as u32;
                    lo | hi << 2
                }
            }
        };
    }

    cmp!(gt_bitmask, _mm_cmpgt_pd);
    cmp!(lt_bitmask, _mm_cmplt_pd);
    cmp!(le_bitmask, _mm_cmple_pd);
}

/// NEON backend: two `float64x2_t` instructions per operation (NEON is
/// mandatory on `aarch64`).
#[cfg(all(target_arch = "aarch64", target_feature = "neon"))]
mod neon {
    use core::arch::aarch64::*;

    #[inline(always)]
    unsafe fn load(a: &[f64; 4]) -> (float64x2_t, float64x2_t) {
        (vld1q_f64(a.as_ptr()), vld1q_f64(a.as_ptr().add(2)))
    }

    #[inline(always)]
    unsafe fn store(lo: float64x2_t, hi: float64x2_t) -> [f64; 4] {
        let mut out = [0.0; 4];
        vst1q_f64(out.as_mut_ptr(), lo);
        vst1q_f64(out.as_mut_ptr().add(2), hi);
        out
    }

    macro_rules! binop {
        ($name:ident, $intr:ident) => {
            #[inline(always)]
            pub fn $name(a: [f64; 4], b: [f64; 4]) -> [f64; 4] {
                // SAFETY: NEON is a compile-time target feature of this
                // module (and mandatory on aarch64).
                unsafe {
                    let (alo, ahi) = load(&a);
                    let (blo, bhi) = load(&b);
                    store($intr(alo, blo), $intr(ahi, bhi))
                }
            }
        };
    }

    binop!(add, vaddq_f64);
    binop!(sub, vsubq_f64);
    binop!(mul, vmulq_f64);
    binop!(div, vdivq_f64);

    #[inline(always)]
    pub fn neg(a: [f64; 4]) -> [f64; 4] {
        // SAFETY: as above.  `vnegq_f64` is a sign-bit flip, exact.
        unsafe {
            let (lo, hi) = load(&a);
            store(vnegq_f64(lo), vnegq_f64(hi))
        }
    }

    #[inline(always)]
    pub fn sqrt(a: [f64; 4]) -> [f64; 4] {
        // SAFETY: as above.
        unsafe {
            let (lo, hi) = load(&a);
            store(vsqrtq_f64(lo), vsqrtq_f64(hi))
        }
    }

    macro_rules! cmp {
        ($name:ident, $intr:ident) => {
            #[inline(always)]
            pub fn $name(a: [f64; 4], b: [f64; 4]) -> u32 {
                // SAFETY: as above.  NEON compares set all-ones per true
                // lane and are ordered (NaN lanes compare false).
                unsafe {
                    let (alo, ahi) = load(&a);
                    let (blo, bhi) = load(&b);
                    let lo = $intr(alo, blo);
                    let hi = $intr(ahi, bhi);
                    (vgetq_lane_u64::<0>(lo) & 1) as u32
                        | ((vgetq_lane_u64::<1>(lo) & 1) as u32) << 1
                        | ((vgetq_lane_u64::<0>(hi) & 1) as u32) << 2
                        | ((vgetq_lane_u64::<1>(hi) & 1) as u32) << 3
                }
            }
        };
    }

    cmp!(gt_bitmask, vcgtq_f64);
    cmp!(lt_bitmask, vcltq_f64);
    cmp!(le_bitmask, vcleq_f64);
}

// Compile-time backend selection: the most specific ISA the build knows it
// can use.  `portable` remains compiled (and public) regardless.
#[cfg(all(target_arch = "x86_64", target_feature = "avx2"))]
use avx2 as active;
#[cfg(all(target_arch = "aarch64", target_feature = "neon"))]
use neon as active;
#[cfg(not(any(
    target_arch = "x86_64",
    all(target_arch = "aarch64", target_feature = "neon")
)))]
use portable as active;
#[cfg(all(target_arch = "x86_64", not(target_feature = "avx2")))]
use sse2 as active;

/// The instruction-set backend a `wide` build (or host CPU) provides.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Isa {
    /// 256-bit AVX/AVX2 `_mm256_*` intrinsics.
    Avx2,
    /// 128-bit SSE2 `_mm_*` intrinsic pairs (the x86-64 baseline).
    Sse2,
    /// 128-bit NEON `float64x2_t` intrinsic pairs (the aarch64 baseline).
    Neon,
    /// The element-wise scalar reference backend.
    Portable,
}

impl Isa {
    /// Short lowercase name ("avx2" / "sse2" / "neon" / "portable").
    pub const fn name(self) -> &'static str {
        match self {
            Isa::Avx2 => "avx2",
            Isa::Sse2 => "sse2",
            Isa::Neon => "neon",
            Isa::Portable => "portable",
        }
    }
}

/// The backend this build of the crate routes `f64x4` arithmetic through,
/// decided at compile time by `cfg(target_arch)` / `cfg(target_feature)`.
pub const fn compiled_isa() -> Isa {
    #[cfg(all(target_arch = "x86_64", target_feature = "avx2"))]
    {
        Isa::Avx2
    }
    #[cfg(all(target_arch = "x86_64", not(target_feature = "avx2")))]
    {
        Isa::Sse2
    }
    #[cfg(all(target_arch = "aarch64", target_feature = "neon"))]
    {
        Isa::Neon
    }
    #[cfg(not(any(
        target_arch = "x86_64",
        all(target_arch = "aarch64", target_feature = "neon")
    )))]
    {
        Isa::Portable
    }
}

/// Whether the *running* CPU supports AVX2, regardless of what this build
/// was compiled for.  Kernel crates use this to select
/// `#[target_feature(enable = "avx2")]` clones of their hot loops at
/// runtime (`is_x86_feature_detected!` caches the CPUID probe).
pub fn runtime_avx2() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        std::arch::is_x86_feature_detected!("avx2")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// The best ISA the *running* CPU offers for these lanes (compile-time
/// arch, runtime feature detection).
pub fn detected_isa() -> Isa {
    #[cfg(target_arch = "x86_64")]
    {
        if runtime_avx2() {
            Isa::Avx2
        } else {
            Isa::Sse2
        }
    }
    #[cfg(all(target_arch = "aarch64", target_feature = "neon"))]
    {
        Isa::Neon
    }
    #[cfg(not(any(
        target_arch = "x86_64",
        all(target_arch = "aarch64", target_feature = "neon")
    )))]
    {
        Isa::Portable
    }
}

/// A static one-token summary of the compiled-backend / detected-ISA pair,
/// for embedding in `Capabilities` names and bench metadata:
/// the compiled backend, plus `+avx2` when the host CPU offers AVX2 that
/// the build only reaches through runtime-dispatched kernel clones.
pub fn dispatch_summary() -> &'static str {
    match (compiled_isa(), detected_isa()) {
        (Isa::Avx2, _) => "avx2",
        (Isa::Sse2, Isa::Avx2) => "sse2+avx2",
        (Isa::Sse2, _) => "sse2",
        (Isa::Neon, _) => "neon",
        (Isa::Portable, _) => "portable",
    }
}

/// Four `f64` lanes with element-wise IEEE arithmetic.
#[allow(non_camel_case_types)]
#[derive(Clone, Copy, Debug, Default, PartialEq)]
#[repr(C, align(32))]
pub struct f64x4([f64; 4]);

impl f64x4 {
    /// Number of lanes.
    pub const LANES: usize = 4;

    /// All lanes zero.
    pub const ZERO: f64x4 = f64x4([0.0; 4]);

    /// Broadcast one value to every lane.
    #[inline(always)]
    pub const fn splat(v: f64) -> f64x4 {
        f64x4([v; 4])
    }

    /// Build from an array, one value per lane.
    #[inline(always)]
    pub const fn from_array(a: [f64; 4]) -> f64x4 {
        f64x4(a)
    }

    /// Load the first four elements of a slice (panics if shorter).
    #[inline(always)]
    pub fn from_slice(s: &[f64]) -> f64x4 {
        f64x4([s[0], s[1], s[2], s[3]])
    }

    /// The lanes as an array.
    #[inline(always)]
    pub const fn to_array(self) -> [f64; 4] {
        self.0
    }

    /// Borrow the lanes as an array.
    #[inline(always)]
    pub const fn as_array_ref(&self) -> &[f64; 4] {
        &self.0
    }

    /// Element-wise square root (IEEE correctly-rounded per lane).
    #[inline(always)]
    pub fn sqrt(self) -> f64x4 {
        f64x4(active::sqrt(self.0))
    }

    /// Per-lane `self > rhs` as a 4-bit mask (bit `i` set iff lane `i`
    /// compares greater; `NaN` lanes compare false, as scalar `>` does).
    #[inline(always)]
    pub fn gt_bitmask(self, rhs: f64x4) -> u32 {
        active::gt_bitmask(self.0, rhs.0)
    }

    /// Per-lane `self < rhs` as a 4-bit mask.
    #[inline(always)]
    pub fn lt_bitmask(self, rhs: f64x4) -> u32 {
        active::lt_bitmask(self.0, rhs.0)
    }

    /// Per-lane `self <= rhs` as a 4-bit mask.
    #[inline(always)]
    pub fn le_bitmask(self, rhs: f64x4) -> u32 {
        active::le_bitmask(self.0, rhs.0)
    }

    /// Whether every lane satisfies `lane > threshold` (the scalar `>`,
    /// so `NaN` lanes fail the test).  The lane-major spine kernel's
    /// whole-group degeneracy guard.
    #[inline(always)]
    pub fn all_gt(self, threshold: f64) -> bool {
        self.gt_bitmask(f64x4::splat(threshold)) == 0b1111
    }
}

impl From<[f64; 4]> for f64x4 {
    #[inline(always)]
    fn from(a: [f64; 4]) -> f64x4 {
        f64x4(a)
    }
}

impl From<f64x4> for [f64; 4] {
    #[inline(always)]
    fn from(v: f64x4) -> [f64; 4] {
        v.0
    }
}

macro_rules! elementwise_binop {
    ($trait:ident, $method:ident, $backend:ident) => {
        impl $trait for f64x4 {
            type Output = f64x4;
            #[inline(always)]
            fn $method(self, rhs: f64x4) -> f64x4 {
                f64x4(active::$backend(self.0, rhs.0))
            }
        }
        impl $trait<f64> for f64x4 {
            type Output = f64x4;
            #[inline(always)]
            fn $method(self, rhs: f64) -> f64x4 {
                self.$method(f64x4::splat(rhs))
            }
        }
    };
}

elementwise_binop!(Add, add, add);
elementwise_binop!(Sub, sub, sub);
elementwise_binop!(Mul, mul, mul);
elementwise_binop!(Div, div, div);

impl AddAssign for f64x4 {
    #[inline(always)]
    fn add_assign(&mut self, rhs: f64x4) {
        *self = *self + rhs;
    }
}

impl SubAssign for f64x4 {
    #[inline(always)]
    fn sub_assign(&mut self, rhs: f64x4) {
        *self = *self - rhs;
    }
}

impl MulAssign for f64x4 {
    #[inline(always)]
    fn mul_assign(&mut self, rhs: f64x4) {
        *self = *self * rhs;
    }
}

impl DivAssign for f64x4 {
    #[inline(always)]
    fn div_assign(&mut self, rhs: f64x4) {
        *self = *self / rhs;
    }
}

impl Neg for f64x4 {
    type Output = f64x4;
    #[inline(always)]
    fn neg(self) -> f64x4 {
        f64x4(active::neg(self.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lanes_are_independent_ieee_ops() {
        let a = f64x4::from_array([1.5, -2.25, 1e300, f64::MIN_POSITIVE]);
        let b = f64x4::from_array([0.3, 7.0, 1e300, 2.0]);
        let sum = (a + b).to_array();
        let dif = (a - b).to_array();
        let prod = (a * b).to_array();
        let quot = (a / b).to_array();
        let (aa, bb) = (a.to_array(), b.to_array());
        for i in 0..4 {
            assert_eq!(sum[i].to_bits(), (aa[i] + bb[i]).to_bits());
            assert_eq!(dif[i].to_bits(), (aa[i] - bb[i]).to_bits());
            assert_eq!(prod[i].to_bits(), (aa[i] * bb[i]).to_bits());
            assert_eq!(quot[i].to_bits(), (aa[i] / bb[i]).to_bits());
        }
    }

    #[test]
    fn wide_dot_product_matches_scalar_bitwise() {
        // The exact pattern the CCD kernel uses: left-associated
        // (x*x' + y*y') + z*z' accumulation must match the scalar loop.
        let xs = [0.123456789, -9.87, 3.5e-5, 1e10];
        let ys = [4.0, 0.25, -1.75, 2.2];
        let zs = [-0.5, 6.125, 7.0e3, -3.25e-7];
        let wx = f64x4::from_array(xs);
        let wy = f64x4::from_array(ys);
        let wz = f64x4::from_array(zs);
        let wide = (wx * wx + wy * wy + wz * wz).to_array();
        for i in 0..4 {
            let scalar = xs[i] * xs[i] + ys[i] * ys[i] + zs[i] * zs[i];
            assert_eq!(wide[i].to_bits(), scalar.to_bits());
        }
    }

    #[test]
    fn splat_slice_and_conversions() {
        assert_eq!(f64x4::splat(2.5).to_array(), [2.5; 4]);
        let s = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(f64x4::from_slice(&s).to_array(), [1.0, 2.0, 3.0, 4.0]);
        let v: f64x4 = [9.0, 8.0, 7.0, 6.0].into();
        let back: [f64; 4] = v.into();
        assert_eq!(back, [9.0, 8.0, 7.0, 6.0]);
        assert_eq!(v.as_array_ref()[2], 7.0);
        assert_eq!(f64x4::ZERO.to_array(), [0.0; 4]);
        assert_eq!((-v).to_array(), [-9.0, -8.0, -7.0, -6.0]);
    }

    #[test]
    fn sqrt_is_correctly_rounded_per_lane() {
        let a = [2.0, 0.49, 1e-300, 144.0];
        let w = f64x4::from_array(a).sqrt().to_array();
        for i in 0..4 {
            assert_eq!(w[i].to_bits(), a[i].sqrt().to_bits());
        }
    }

    #[test]
    fn assign_ops_match() {
        let mut v = f64x4::splat(1.0);
        v += f64x4::splat(2.0);
        v *= f64x4::splat(3.0);
        v -= f64x4::splat(4.0);
        v /= f64x4::splat(2.0);
        assert_eq!(v.to_array(), [2.5; 4]);
        assert_eq!((f64x4::splat(1.0) + 2.0).to_array(), [3.0; 4]);
        assert_eq!((f64x4::splat(6.0) * 0.5).to_array(), [3.0; 4]);
        assert_eq!((f64x4::splat(6.0) - 1.5).to_array(), [4.5; 4]);
        assert_eq!((f64x4::splat(6.0) / 4.0).to_array(), [1.5; 4]);
    }

    #[test]
    fn comparison_bitmasks_match_scalar_comparisons() {
        let a = f64x4::from_array([1.0, f64::NAN, -0.0, 3.0]);
        let b = f64x4::from_array([0.5, 1.0, 0.0, 3.0]);
        let (aa, bb) = (a.to_array(), b.to_array());
        let mut gt = 0u32;
        let mut lt = 0u32;
        let mut le = 0u32;
        for i in 0..4 {
            gt |= ((aa[i] > bb[i]) as u32) << i;
            lt |= ((aa[i] < bb[i]) as u32) << i;
            le |= ((aa[i] <= bb[i]) as u32) << i;
        }
        assert_eq!(a.gt_bitmask(b), gt);
        assert_eq!(a.lt_bitmask(b), lt);
        assert_eq!(a.le_bitmask(b), le);
        // NaN fails every ordered comparison, including the group guard.
        assert!(!a.all_gt(-10.0));
        assert!(f64x4::splat(1e-11).all_gt(1e-12));
        assert!(!f64x4::from_array([1.0, 1.0, 1e-13, 1.0]).all_gt(1e-12));
    }

    #[test]
    fn active_backend_matches_portable_reference() {
        // Spot check: the proptest in the facade crate covers randomized
        // sequences; this is the in-crate smoke test.
        let a = [1.5e-300, -7.25, f64::INFINITY, 0.1];
        let b = [3.0, f64::NAN, 2.0, -0.3];
        let (wa, wb) = (f64x4::from_array(a), f64x4::from_array(b));
        assert_eq!(
            (wa + wb).to_array().map(f64::to_bits),
            portable::add(a, b).map(f64::to_bits)
        );
        assert_eq!(
            (wa - wb).to_array().map(f64::to_bits),
            portable::sub(a, b).map(f64::to_bits)
        );
        assert_eq!(
            (wa * wb).to_array().map(f64::to_bits),
            portable::mul(a, b).map(f64::to_bits)
        );
        assert_eq!(
            (wa / wb).to_array().map(f64::to_bits),
            portable::div(a, b).map(f64::to_bits)
        );
        assert_eq!(
            (-wa).to_array().map(f64::to_bits),
            portable::neg(a).map(f64::to_bits)
        );
        assert_eq!(
            wa.sqrt().to_array().map(f64::to_bits),
            portable::sqrt(a).map(f64::to_bits)
        );
        assert_eq!(wa.gt_bitmask(wb), portable::gt_bitmask(a, b));
        assert_eq!(wa.lt_bitmask(wb), portable::lt_bitmask(a, b));
        assert_eq!(wa.le_bitmask(wb), portable::le_bitmask(a, b));
    }

    #[test]
    fn isa_reporting_is_consistent() {
        let compiled = compiled_isa();
        let detected = detected_isa();
        assert!(!compiled.name().is_empty());
        assert!(!detected.name().is_empty());
        let summary = dispatch_summary();
        assert!(summary.starts_with(compiled.name()), "{summary}");
        #[cfg(target_arch = "x86_64")]
        assert_eq!(runtime_avx2(), detected == Isa::Avx2);
    }
}
