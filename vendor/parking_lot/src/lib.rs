//! Offline shim for the `parking_lot` API surface used in this workspace.
//!
//! Backed by `std::sync` primitives: the signatures match `parking_lot`
//! (no `Result` from `lock`), with lock poisoning transparently ignored —
//! matching `parking_lot`'s behaviour of not supporting poisoning.

use std::sync::TryLockError;

/// A mutual-exclusion lock whose `lock` never returns a `Result`.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// Guard for [`Mutex`]; releases the lock on drop.
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Create a new mutex.
    pub fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.0.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(poisoned)) => Some(poisoned.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

/// A reader-writer lock whose guards never return `Result`s.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

/// Shared-read guard for [`RwLock`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// Exclusive-write guard for [`RwLock`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Create a new reader-writer lock.
    pub fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.0.read() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.0.write() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(5);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 6);
        assert_eq!(m.into_inner(), 6);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(vec![1, 2]);
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }
}
