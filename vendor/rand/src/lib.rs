//! Offline, API-compatible subset of the `rand` crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the thin slice of the `rand` 0.8 API it actually
//! uses: the [`RngCore`]/[`Rng`]/[`SeedableRng`] traits, the [`Standard`]
//! distribution for `f64`/`f32`/`u32`/`u64`/`bool`, and integer/float
//! range sampling via [`Rng::gen_range`].  Algorithms are deliberately
//! simple; reproducibility within this workspace is the only contract
//! (no compatibility with upstream `rand` streams is promised).

use std::ops::{Range, RangeInclusive};

/// The core of a random number generator: a source of uniform bits.
pub trait RngCore {
    /// The next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32;
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A generator seedable from a fixed-size byte seed.
pub trait SeedableRng: Sized {
    /// The seed type (a byte array).
    type Seed;
    /// Construct from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;
}

/// The standard distribution: uniform over a type's natural domain
/// (`[0, 1)` for floats, all values for integers, fair coin for `bool`).
pub struct Standard;

/// A distribution over values of type `T`.
pub trait Distribution<T> {
    /// Draw one value.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

impl Distribution<f64> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        // 53 uniform bits into [0, 1), matching upstream's precision.
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Distribution<f32> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Distribution<u32> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl Distribution<u64> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Distribution<usize> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> usize {
        rng.next_u64() as usize
    }
}

impl Distribution<bool> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// A range usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end - start) as u64 + 1;
                if span == 0 {
                    // Full-width inclusive range.
                    return rng.next_u64() as $t;
                }
                start + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

impl_int_range!(usize, u64, u32, u16, u8);

macro_rules! impl_signed_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i64 - self.start as i64) as u64;
                (self.start as i64 + (rng.next_u64() % span) as i64) as $t
            }
        }
    )*};
}

impl_signed_range!(i64, i32, i16, i8);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u: f64 = Standard.sample(rng);
        self.start + u * (self.end - self.start)
    }
}

/// Convenience methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Sample a value from the [`Standard`] distribution.
    fn gen<T>(&mut self) -> T
    where
        Standard: Distribution<T>,
    {
        Standard.sample(self)
    }

    /// Sample uniformly from a range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// A Bernoulli draw with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool {
        let u: f64 = self.gen();
        u < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Commonly used items, mirroring `rand::prelude`.
pub mod prelude {
    pub use crate::{Distribution, Rng, RngCore, SeedableRng, Standard};
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u64);
    impl RngCore for Counter {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.0 = self
                .0
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            self.0
        }
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = Counter(7);
        for _ in 0..10_000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = Counter(3);
        for _ in 0..10_000 {
            let a = r.gen_range(3..9usize);
            assert!((3..9).contains(&a));
            let b = r.gen_range(1..=4usize);
            assert!((1..=4).contains(&b));
            let c = r.gen_range(-2.0..2.0f64);
            assert!((-2.0..2.0).contains(&c));
        }
    }

    #[test]
    fn dyn_rng_is_usable() {
        fn takes_dyn(rng: &mut dyn RngCore) -> f64 {
            rng.gen::<f64>()
        }
        let mut r = Counter(1);
        let x = takes_dyn(&mut r);
        assert!((0.0..1.0).contains(&x));
    }
}
