//! Offline property-testing harness with a proptest-compatible API.
//!
//! Supports the subset of `proptest` this workspace's tests use:
//!
//! * the [`proptest!`] macro with an optional `#![proptest_config(…)]`
//!   attribute and `arg in strategy` bindings;
//! * [`Strategy`] for `Range<f64>`, tuples of strategies, `prop_map`, and
//!   `prop::collection::vec`;
//! * [`prop_assert!`], [`prop_assert_eq!`] and [`prop_assume!`].
//!
//! Cases are generated from a deterministic per-test RNG (seeded from the
//! test name), so failures are reproducible run to run.  Shrinking is not
//! implemented: a failing case reports its assertion message directly.

use std::ops::Range;

/// Outcome of one generated test case.
#[derive(Debug)]
pub enum TestCaseError {
    /// The case did not satisfy a `prop_assume!` precondition; it is
    /// skipped without counting toward the case budget.
    Reject,
    /// An assertion failed with the given message.
    Fail(String),
}

/// Per-test configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of accepted cases to run.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` accepted cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Deterministic RNG used to generate test cases (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed from arbitrary bytes (e.g. the test name).
    pub fn from_name(name: &str) -> Self {
        let mut state = 0x9E37_79B9_7F4A_7C15u64;
        for b in name.bytes() {
            state = (state ^ b as u64).wrapping_mul(0x100_0000_01B3);
        }
        TestRng { state }
    }

    /// Next 64 uniform bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw from `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A generator of values for one test argument.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { strategy: self, f }
    }
}

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for Range<i32> {
    type Value = i32;
    fn sample(&self, rng: &mut TestRng) -> i32 {
        let span = (self.end - self.start) as u64;
        (self.start as i64 + (rng.next_u64() % span.max(1)) as i64) as i32
    }
}

impl Strategy for Range<usize> {
    type Value = usize;
    fn sample(&self, rng: &mut TestRng) -> usize {
        let span = (self.end - self.start) as u64;
        self.start + (rng.next_u64() % span.max(1)) as usize
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    strategy: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.strategy.sample(rng))
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

/// The `prop` namespace (`prop::collection::vec`).
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use super::super::{Strategy, TestRng};

        /// Strategy producing `Vec`s of a fixed length.
        pub struct VecStrategy<S> {
            element: S,
            len: usize,
        }

        /// Generate vectors of exactly `len` elements of `element`.
        pub fn vec<S: Strategy>(element: S, len: usize) -> VecStrategy<S> {
            VecStrategy { element, len }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
                (0..self.len).map(|_| self.element.sample(rng)).collect()
            }
        }
    }
}

/// Everything a property test needs in scope.
pub mod prelude {
    pub use crate::prop;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, ProptestConfig,
        Strategy, TestCaseError,
    };
}

/// Assert a condition inside a property test, failing the case (not the
/// whole process) with a formatted message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        // `if cond {} else` rather than `if !cond` keeps clippy's
        // neg_cmp_op_on_partial_ord out of callers' float comparisons.
        if $cond {
        } else {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if $cond {
        } else {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!($($fmt)*)));
        }
    };
}

/// Assert equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let left = $left;
        let right = $right;
        if !(left == right) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                "assertion failed: `{:?}` != `{:?}`",
                left, right
            )));
        }
    }};
}

/// Assert inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let left = $left;
        let right = $right;
        if left == right {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                "assertion failed: `{:?}` == `{:?}`",
                left, right
            )));
        }
    }};
}

/// Skip the current case when a precondition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if $cond {
        } else {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

/// Define property tests: each `#[test] fn name(arg in strategy, …) { … }`
/// becomes a unit test running the body over generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($config) $($rest)*);
    };
    (@with_config ($config:expr)
        $(
            #[test]
            fn $name:ident ( $($arg:ident in $strategy:expr),* $(,)? ) $body:block
        )*
    ) => {
        $(
            #[test]
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                let mut rng = $crate::TestRng::from_name(stringify!($name));
                let mut accepted: u32 = 0;
                let mut attempts: u32 = 0;
                let max_attempts = config.cases.saturating_mul(20).max(100);
                while accepted < config.cases && attempts < max_attempts {
                    attempts += 1;
                    $(
                        let $arg = $crate::Strategy::sample(&($strategy), &mut rng);
                    )*
                    let outcome = (|| -> ::std::result::Result<(), $crate::TestCaseError> {
                        $body
                        #[allow(unreachable_code)]
                        ::std::result::Result::Ok(())
                    })();
                    match outcome {
                        ::std::result::Result::Ok(()) => accepted += 1,
                        ::std::result::Result::Err($crate::TestCaseError::Reject) => {}
                        ::std::result::Result::Err($crate::TestCaseError::Fail(msg)) => {
                            panic!("property `{}` failed after {} cases: {}", stringify!($name), accepted, msg);
                        }
                    }
                }
                assert!(
                    accepted >= config.cases.min(1),
                    "property `{}` rejected too many cases ({} accepted / {} attempts)",
                    stringify!($name), accepted, attempts
                );
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@with_config ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in -5.0..5.0f64) {
            prop_assert!((-5.0..5.0).contains(&x));
        }

        #[test]
        fn tuples_and_maps(pair in (0.0..1.0f64, 2.0..3.0f64), y in (0.0..1.0f64).prop_map(|v| v * 10.0)) {
            prop_assert!(pair.0 < pair.1);
            prop_assert!((0.0..10.0).contains(&y));
        }

        #[test]
        fn vectors_have_requested_length(v in prop::collection::vec(0.0..1.0f64, 7)) {
            prop_assert_eq!(v.len(), 7);
        }

        #[test]
        fn assume_skips_cases(x in 0.0..1.0f64) {
            prop_assume!(x > 0.1);
            prop_assert!(x > 0.1);
        }
    }
}
