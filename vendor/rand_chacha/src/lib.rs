//! Offline ChaCha8 random number generator.
//!
//! Implements the ChaCha stream cipher with 8 rounds as a counter-based
//! RNG behind the vendored [`rand`] traits.  The keystream follows the
//! original djb construction (256-bit key, 64-bit block counter, 64-bit
//! nonce — zero for [`SeedableRng::from_seed`], caller-chosen for
//! [`ChaCha8Rng::from_key_and_nonce`]).  Distinct nonces under one key
//! select independent keystreams, which is what lets stream families be
//! derived from a single expanded key without re-keying the cipher per
//! stream.  Streams within this workspace are reproducible;
//! bit-compatibility with the upstream `rand_chacha` crate is not a goal.

use rand::{RngCore, SeedableRng};

const CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

/// A ChaCha RNG with 8 rounds: fast, high-quality, counter-addressable.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    key: [u32; 8],
    counter: u64,
    nonce: u64,
    block: [u32; 16],
    index: usize,
}

#[inline(always)]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl ChaCha8Rng {
    /// Construct directly from an expanded 256-bit key and a 64-bit stream
    /// nonce.  Each `(key, nonce)` pair addresses its own independent
    /// keystream, so a caller holding one expanded key can mint per-stream
    /// generators by varying only the nonce — no per-stream key schedule.
    pub fn from_key_and_nonce(key: [u32; 8], nonce: u64) -> Self {
        ChaCha8Rng {
            key,
            counter: 0,
            nonce,
            block: [0; 16],
            index: 16,
        }
    }

    fn refill(&mut self) {
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&CONSTANTS);
        state[4..12].copy_from_slice(&self.key);
        state[12] = self.counter as u32;
        state[13] = (self.counter >> 32) as u32;
        state[14] = self.nonce as u32;
        state[15] = (self.nonce >> 32) as u32;
        let input = state;
        for _ in 0..4 {
            // One double round: 4 column rounds then 4 diagonal rounds.
            quarter_round(&mut state, 0, 4, 8, 12);
            quarter_round(&mut state, 1, 5, 9, 13);
            quarter_round(&mut state, 2, 6, 10, 14);
            quarter_round(&mut state, 3, 7, 11, 15);
            quarter_round(&mut state, 0, 5, 10, 15);
            quarter_round(&mut state, 1, 6, 11, 12);
            quarter_round(&mut state, 2, 7, 8, 13);
            quarter_round(&mut state, 3, 4, 9, 14);
        }
        for (out, inp) in state.iter_mut().zip(input.iter()) {
            *out = out.wrapping_add(*inp);
        }
        self.block = state;
        self.counter = self.counter.wrapping_add(1);
        self.index = 0;
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut key = [0u32; 8];
        for (k, chunk) in key.iter_mut().zip(seed.chunks_exact(4)) {
            *k = u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        }
        ChaCha8Rng {
            key,
            counter: 0,
            nonce: 0,
            block: [0; 16],
            index: 16,
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.index >= 16 {
            self.refill();
        }
        let word = self.block[self.index];
        self.index += 1;
        word
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        lo | (hi << 32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_seed_same_stream() {
        let seed = [7u8; 32];
        let a: Vec<u64> = {
            let mut r = ChaCha8Rng::from_seed(seed);
            (0..64).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = ChaCha8Rng::from_seed(seed);
            (0..64).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = ChaCha8Rng::from_seed([1u8; 32]);
        let mut b = ChaCha8Rng::from_seed([2u8; 32]);
        let va: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn nonces_select_independent_streams_under_one_key() {
        let key = [0xDEAD_BEEFu32; 8];
        let draw = |nonce: u64| -> Vec<u64> {
            let mut r = ChaCha8Rng::from_key_and_nonce(key, nonce);
            (0..16).map(|_| r.next_u64()).collect()
        };
        assert_eq!(draw(5), draw(5), "same (key, nonce) must reproduce");
        assert_ne!(draw(0), draw(1));
        assert_ne!(draw(1), draw(1 << 32));
        // from_seed is the nonce-0 member of its key's family.
        let mut seeded = ChaCha8Rng::from_seed([0u8; 32]);
        let mut explicit = ChaCha8Rng::from_key_and_nonce([0u32; 8], 0);
        for _ in 0..32 {
            assert_eq!(seeded.next_u64(), explicit.next_u64());
        }
    }

    #[test]
    fn unit_floats_look_uniform() {
        let mut r = ChaCha8Rng::from_seed([9u8; 32]);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| r.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} far from 0.5");
    }

    #[test]
    fn clone_continues_identically() {
        let mut r = ChaCha8Rng::from_seed([3u8; 32]);
        for _ in 0..37 {
            r.next_u32();
        }
        let mut c = r.clone();
        assert_eq!(r.next_u64(), c.next_u64());
    }
}
