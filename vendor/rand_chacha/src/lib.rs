//! Offline ChaCha8 random number generator.
//!
//! Implements the ChaCha stream cipher with 8 rounds as a counter-based
//! RNG behind the vendored [`rand`] traits.  The keystream follows the
//! original djb construction (256-bit key, 64-bit block counter, 64-bit
//! nonce fixed at zero).  Streams within this workspace are reproducible;
//! bit-compatibility with the upstream `rand_chacha` crate is not a goal.

use rand::{RngCore, SeedableRng};

const CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

/// A ChaCha RNG with 8 rounds: fast, high-quality, counter-addressable.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    key: [u32; 8],
    counter: u64,
    block: [u32; 16],
    index: usize,
}

#[inline(always)]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&CONSTANTS);
        state[4..12].copy_from_slice(&self.key);
        state[12] = self.counter as u32;
        state[13] = (self.counter >> 32) as u32;
        state[14] = 0;
        state[15] = 0;
        let input = state;
        for _ in 0..4 {
            // One double round: 4 column rounds then 4 diagonal rounds.
            quarter_round(&mut state, 0, 4, 8, 12);
            quarter_round(&mut state, 1, 5, 9, 13);
            quarter_round(&mut state, 2, 6, 10, 14);
            quarter_round(&mut state, 3, 7, 11, 15);
            quarter_round(&mut state, 0, 5, 10, 15);
            quarter_round(&mut state, 1, 6, 11, 12);
            quarter_round(&mut state, 2, 7, 8, 13);
            quarter_round(&mut state, 3, 4, 9, 14);
        }
        for (out, inp) in state.iter_mut().zip(input.iter()) {
            *out = out.wrapping_add(*inp);
        }
        self.block = state;
        self.counter = self.counter.wrapping_add(1);
        self.index = 0;
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut key = [0u32; 8];
        for (k, chunk) in key.iter_mut().zip(seed.chunks_exact(4)) {
            *k = u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        }
        ChaCha8Rng {
            key,
            counter: 0,
            block: [0; 16],
            index: 16,
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.index >= 16 {
            self.refill();
        }
        let word = self.block[self.index];
        self.index += 1;
        word
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        lo | (hi << 32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_seed_same_stream() {
        let seed = [7u8; 32];
        let a: Vec<u64> = {
            let mut r = ChaCha8Rng::from_seed(seed);
            (0..64).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = ChaCha8Rng::from_seed(seed);
            (0..64).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = ChaCha8Rng::from_seed([1u8; 32]);
        let mut b = ChaCha8Rng::from_seed([2u8; 32]);
        let va: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn unit_floats_look_uniform() {
        let mut r = ChaCha8Rng::from_seed([9u8; 32]);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| r.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} far from 0.5");
    }

    #[test]
    fn clone_continues_identically() {
        let mut r = ChaCha8Rng::from_seed([3u8; 32]);
        for _ in 0..37 {
            r.next_u32();
        }
        let mut c = r.clone();
        assert_eq!(r.next_u64(), c.next_u64());
    }
}
