//! Offline micro-benchmark harness with a criterion-compatible API.
//!
//! Implements the subset of the `criterion` crate interface this
//! workspace's benches use — groups, `bench_function`, `bench_with_input`,
//! `iter`, `iter_batched`, and the `criterion_group!`/`criterion_main!`
//! macros — with straightforward wall-clock measurement: per sample the
//! routine runs enough iterations to amortise timer overhead, and the
//! median over samples is reported as ns/iter on stdout.
//!
//! Statistical analysis, HTML reports and baseline comparison are out of
//! scope; the numbers are honest medians suitable for relative
//! comparisons within one run.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Batching strategy for [`Bencher::iter_batched`] (accepted for API
/// compatibility; every batch re-runs the setup closure).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per batch.
    PerIteration,
}

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Measurement state handed to the benchmark closure.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `routine` over the configured number of iterations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Time `routine` with a fresh `setup` product per iteration; setup
    /// time is excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }
}

/// A named collection of benchmarks sharing measurement settings.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl<'a> BenchmarkGroup<'a> {
    /// Number of samples collected per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Wall-clock budget for the measurement phase.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Wall-clock budget for the warm-up phase.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up_time = d;
        self
    }

    /// Run one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let full = format!("{}/{}", self.name, id.id);
        let ns = run_benchmark(
            &mut f,
            self.sample_size,
            self.warm_up_time,
            self.measurement_time,
        );
        println!("{full:<60} time: [{} per iter]", format_ns(ns));
        self
    }

    /// Run one benchmark that receives an input value.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// Finish the group (prints nothing extra; provided for compatibility).
    pub fn finish(self) {}
}

/// Run one benchmark closure and return the median ns/iter.
fn run_benchmark<F: FnMut(&mut Bencher)>(
    f: &mut F,
    sample_size: usize,
    warm_up: Duration,
    measurement: Duration,
) -> f64 {
    // Warm-up & calibration: find an iteration count whose sample takes
    // roughly measurement_time / sample_size.
    let mut bencher = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    let warm_start = Instant::now();
    f(&mut bencher);
    let mut per_iter = bencher.elapsed.max(Duration::from_nanos(1));
    while warm_start.elapsed() < warm_up {
        f(&mut bencher);
        per_iter = bencher.elapsed.max(Duration::from_nanos(1));
    }
    let target_sample = measurement.as_secs_f64() / sample_size as f64;
    let iters = (target_sample / per_iter.as_secs_f64()).clamp(1.0, 1e9) as u64;

    let mut samples: Vec<f64> = Vec::with_capacity(sample_size);
    let deadline = Instant::now() + measurement;
    for _ in 0..sample_size {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        samples.push(b.elapsed.as_nanos() as f64 / iters as f64);
        if Instant::now() > deadline {
            break;
        }
    }
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    samples[samples.len() / 2]
}

fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

/// Top-level benchmark driver.
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            default_sample_size: 10,
        }
    }
}

impl Criterion {
    /// Create a benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.default_sample_size;
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_size,
            measurement_time: Duration::from_secs(3),
            warm_up_time: Duration::from_millis(500),
        }
    }

    /// Run a standalone benchmark outside a group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let ns = run_benchmark(
            &mut f,
            self.default_sample_size,
            Duration::from_millis(500),
            Duration::from_secs(3),
        );
        println!("{id:<60} time: [{} per iter]", format_ns(ns));
        self
    }

    /// Parse command-line arguments (accepted for compatibility; filters
    /// and baseline flags are ignored).
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Final summary hook (no-op).
    pub fn final_summary(&self) {}
}

/// Define a function running a list of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name(c: &mut $crate::Criterion) {
            $( $target(c); )+
        }
    };
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name(c: &mut $crate::Criterion) {
            let _ = $config;
            $( $target(c); )+
        }
    };
}

/// Define `main` running benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut criterion = $crate::Criterion::default();
            $( $group(&mut criterion); )+
            criterion.final_summary();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measurement_runs_and_reports() {
        let ns = run_benchmark(
            &mut |b: &mut Bencher| b.iter(|| black_box(3u64).wrapping_mul(7)),
            5,
            Duration::from_millis(5),
            Duration::from_millis(20),
        );
        assert!(ns > 0.0 && ns < 1e7, "implausible ns/iter: {ns}");
    }

    #[test]
    fn iter_batched_excludes_setup() {
        let mut b = Bencher {
            iters: 50,
            elapsed: Duration::ZERO,
        };
        b.iter_batched(
            || vec![1u8; 64],
            |v| v.iter().map(|&x| x as u64).sum::<u64>(),
            BatchSize::SmallInput,
        );
        assert!(b.elapsed > Duration::ZERO);
    }

    #[test]
    fn benchmark_ids_format() {
        assert_eq!(BenchmarkId::new("scalar", 32).id, "scalar/32");
        assert_eq!(BenchmarkId::from_parameter(7).id, "7");
    }
}
