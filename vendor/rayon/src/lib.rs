//! Offline subset of the `rayon` API implemented with `std::thread::scope`.
//!
//! Supports the slice patterns this workspace uses:
//!
//! * `slice.par_iter_mut().enumerate().for_each(|(i, x)| …)`
//! * `slice.par_iter().enumerate().map(|(i, x)| …).collect::<Vec<_>>()`
//! * `ThreadPoolBuilder::new().num_threads(n).build()?.install(|| …)`
//! * `rayon::current_num_threads()`
//!
//! Work is split into contiguous chunks, one per worker thread, executed
//! under `std::thread::scope` so borrowed data needs no `'static` bound.
//! Results of `map` are concatenated in index order, so the observable
//! semantics (including ordering) match rayon's indexed iterators.

use std::cell::Cell;
use std::fmt;

thread_local! {
    static POOL_THREADS: Cell<usize> = const { Cell::new(0) };
}

/// Number of worker threads parallel operations on this thread will use.
pub fn current_num_threads() -> usize {
    let configured = POOL_THREADS.with(|c| c.get());
    if configured > 0 {
        configured
    } else {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    }
}

/// Error building a thread pool (never produced by this shim).
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "failed to build thread pool")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builder for a [`ThreadPool`] with an explicit thread count.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    /// Start building a pool.
    pub fn new() -> Self {
        ThreadPoolBuilder { num_threads: 0 }
    }

    /// Set the worker-thread count (0 = one per core).
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    /// Finish building.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        Ok(ThreadPool {
            num_threads: self.num_threads,
        })
    }
}

/// A logical thread pool: parallel operations run inside [`ThreadPool::install`]
/// use its thread count.
#[derive(Debug)]
pub struct ThreadPool {
    num_threads: usize,
}

impl ThreadPool {
    /// Run `op` with this pool's thread count active on the calling thread.
    pub fn install<R>(&self, op: impl FnOnce() -> R) -> R {
        let previous = POOL_THREADS.with(|c| c.replace(self.num_threads));
        let result = op();
        POOL_THREADS.with(|c| c.set(previous));
        result
    }

    /// The pool's configured thread count.
    pub fn current_num_threads(&self) -> usize {
        if self.num_threads > 0 {
            self.num_threads
        } else {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        }
    }
}

/// Run `f(chunk_start, chunk)` for disjoint chunks of `0..len` on scoped threads.
fn split_run<F: Fn(usize, usize) + Sync>(len: usize, f: F) {
    if len == 0 {
        return;
    }
    let workers = current_num_threads().clamp(1, len);
    if workers == 1 {
        f(0, len);
        return;
    }
    let chunk = len.div_ceil(workers);
    std::thread::scope(|scope| {
        let f = &f;
        let mut start = chunk;
        while start < len {
            let end = (start + chunk).min(len);
            scope.spawn(move || f(start, end));
            start = end;
        }
        // The calling thread takes the first chunk instead of idling.
        f(0, chunk.min(len));
    });
}

// ---------------------------------------------------------------------------
// Mutable path: par_iter_mut().enumerate().for_each(...)
// ---------------------------------------------------------------------------

/// Parallel iterator over `&mut [T]`.
pub struct ParIterMut<'a, T> {
    slice: &'a mut [T],
}

impl<'a, T: Send> ParIterMut<'a, T> {
    /// Pair each element with its index.
    pub fn enumerate(self) -> EnumerateMut<'a, T> {
        EnumerateMut { slice: self.slice }
    }

    /// Apply `f` to every element in parallel.
    pub fn for_each<F: Fn(&mut T) + Sync + Send>(self, f: F) {
        self.enumerate().for_each(|(_, x)| f(x));
    }
}

/// Indexed parallel iterator over `&mut [T]`.
pub struct EnumerateMut<'a, T> {
    slice: &'a mut [T],
}

impl<'a, T: Send> EnumerateMut<'a, T> {
    /// Apply `f` to every `(index, element)` pair in parallel.
    #[allow(clippy::needless_range_loop)] // raw-pointer chunk walk
    pub fn for_each<F: Fn((usize, &mut T)) + Sync + Send>(self, f: F) {
        let base = self.slice.as_mut_ptr() as usize;
        let len = self.slice.len();
        split_run(len, |start, end| {
            // SAFETY: chunks [start, end) are disjoint across workers, each
            // within the original exclusive borrow held by `self`.
            let ptr = base as *mut T;
            for i in start..end {
                let item = unsafe { &mut *ptr.add(i) };
                f((i, item));
            }
        });
    }
}

/// Extension trait providing `par_iter_mut` on slices and vectors.
pub trait IntoParallelRefMutIterator<'data> {
    /// The element type.
    type Item: Send;
    /// Create a parallel iterator over exclusive references.
    fn par_iter_mut(&'data mut self) -> ParIterMut<'data, Self::Item>;
}

impl<'data, T: Send + 'data> IntoParallelRefMutIterator<'data> for [T] {
    type Item = T;
    fn par_iter_mut(&'data mut self) -> ParIterMut<'data, T> {
        ParIterMut { slice: self }
    }
}

impl<'data, T: Send + 'data> IntoParallelRefMutIterator<'data> for Vec<T> {
    type Item = T;
    fn par_iter_mut(&'data mut self) -> ParIterMut<'data, T> {
        ParIterMut {
            slice: self.as_mut_slice(),
        }
    }
}

// ---------------------------------------------------------------------------
// Shared path: par_iter().enumerate().map(...).collect()
// ---------------------------------------------------------------------------

/// Parallel iterator over `&[T]`.
pub struct ParIter<'a, T> {
    slice: &'a [T],
}

impl<'a, T: Sync> ParIter<'a, T> {
    /// Pair each element with its index.
    pub fn enumerate(self) -> Enumerate<'a, T> {
        Enumerate { slice: self.slice }
    }

    /// Map each element through `f`.
    pub fn map<R: Send, F: Fn(&'a T) -> R + Sync + Send>(
        self,
        f: F,
    ) -> MapIndexed<'a, T, impl Fn((usize, &'a T)) -> R + Sync + Send> {
        MapIndexed {
            slice: self.slice,
            f: move |(_, x): (usize, &'a T)| f(x),
        }
    }
}

/// Indexed parallel iterator over `&[T]`.
pub struct Enumerate<'a, T> {
    slice: &'a [T],
}

impl<'a, T: Sync> Enumerate<'a, T> {
    /// Map each `(index, element)` pair through `f`.
    pub fn map<R: Send, F: Fn((usize, &'a T)) -> R + Sync + Send>(
        self,
        f: F,
    ) -> MapIndexed<'a, T, F> {
        MapIndexed {
            slice: self.slice,
            f,
        }
    }

    /// Apply `f` to every `(index, element)` pair in parallel.
    pub fn for_each<F: Fn((usize, &'a T)) + Sync + Send>(self, f: F) {
        let slice = self.slice;
        split_run(slice.len(), |start, end| {
            for (i, item) in slice[start..end].iter().enumerate() {
                f((start + i, item));
            }
        });
    }
}

/// The result of mapping an indexed parallel iterator.
pub struct MapIndexed<'a, T, F> {
    slice: &'a [T],
    f: F,
}

impl<'a, T: Sync, F> MapIndexed<'a, T, F> {
    /// Execute the map in parallel and collect results in index order.
    #[allow(clippy::needless_range_loop)] // index addresses both input and output slots
    pub fn collect<C, R>(self) -> C
    where
        F: Fn((usize, &'a T)) -> R + Sync + Send,
        R: Send,
        C: From<Vec<R>>,
    {
        let len = self.slice.len();
        let mut out: Vec<Option<R>> = Vec::with_capacity(len);
        out.resize_with(len, || None);
        {
            let slots = SendPtr(out.as_mut_ptr());
            let slice = self.slice;
            let f = &self.f;
            split_run(len, move |start, end| {
                let slots = slots;
                for i in start..end {
                    let value = f((i, &slice[i]));
                    // SAFETY: each index is written by exactly one worker.
                    unsafe { *slots.0.add(i) = Some(value) };
                }
            });
        }
        C::from(
            out.into_iter()
                .map(|v| v.expect("parallel map slot filled"))
                .collect(),
        )
    }
}

struct SendPtr<R>(*mut Option<R>);
impl<R> Clone for SendPtr<R> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<R> Copy for SendPtr<R> {}
unsafe impl<R: Send> Send for SendPtr<R> {}
unsafe impl<R: Send> Sync for SendPtr<R> {}

/// Extension trait providing `par_iter` on slices and vectors.
pub trait IntoParallelRefIterator<'data> {
    /// The element type.
    type Item: Sync;
    /// Create a parallel iterator over shared references.
    fn par_iter(&'data self) -> ParIter<'data, Self::Item>;
}

impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for [T] {
    type Item = T;
    fn par_iter(&'data self) -> ParIter<'data, T> {
        ParIter { slice: self }
    }
}

impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for Vec<T> {
    type Item = T;
    fn par_iter(&'data self) -> ParIter<'data, T> {
        ParIter {
            slice: self.as_slice(),
        }
    }
}

/// The traits that make `par_iter`/`par_iter_mut` available.
pub mod prelude {
    pub use crate::{IntoParallelRefIterator, IntoParallelRefMutIterator};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn for_each_visits_every_index_once() {
        let mut items = vec![0usize; 4097];
        let visits = AtomicUsize::new(0);
        items.par_iter_mut().enumerate().for_each(|(i, x)| {
            visits.fetch_add(1, Ordering::Relaxed);
            *x = i * 2;
        });
        assert_eq!(visits.load(Ordering::Relaxed), 4097);
        assert!(items.iter().enumerate().all(|(i, &x)| x == i * 2));
    }

    #[test]
    fn map_collect_preserves_order() {
        let items: Vec<u32> = (0..10_000).collect();
        let out: Vec<u64> = items
            .par_iter()
            .enumerate()
            .map(|(i, x)| *x as u64 + i as u64)
            .collect();
        assert_eq!(out.len(), items.len());
        assert!(out.iter().enumerate().all(|(i, &x)| x == 2 * i as u64));
    }

    #[test]
    fn pool_install_overrides_thread_count() {
        let pool = crate::ThreadPoolBuilder::new()
            .num_threads(2)
            .build()
            .unwrap();
        pool.install(|| {
            assert_eq!(crate::current_num_threads(), 2);
            let items: Vec<u8> = vec![1; 100];
            let out: Vec<u16> = items
                .par_iter()
                .enumerate()
                .map(|(_, x)| *x as u16)
                .collect();
            assert_eq!(out.iter().sum::<u16>(), 100);
        });
        assert_ne!(crate::current_num_threads(), 0);
    }

    #[test]
    fn empty_slices_are_noops() {
        let mut empty: Vec<u8> = Vec::new();
        empty
            .par_iter_mut()
            .enumerate()
            .for_each(|_| panic!("must not run"));
        let out: Vec<u8> = empty.par_iter().enumerate().map(|(_, x)| *x).collect();
        assert!(out.is_empty());
    }
}
