//! Quickstart: sample one benchmark loop with the multi-scoring MOSCEM
//! sampler and print the Pareto front and the best decoy found.
//!
//! Run with: `cargo run --release --example quickstart`

use lms_core::{MoscemSampler, SamplerConfig};
use lms_protein::BenchmarkLibrary;
use lms_scoring::{KnowledgeBase, KnowledgeBaseConfig};
use lms_simt::Executor;

fn main() {
    // 1. Pick a target from the synthetic 53-loop benchmark (the paper's
    //    1cex 40:51, a 12-residue loop).
    let library = BenchmarkLibrary::standard();
    let target = library
        .target_by_name("1cex")
        .expect("1cex is in the benchmark");
    println!("Target: {target}");

    // 2. Build the knowledge base behind the TRIPLET and DIST potentials.
    //    (`fast()` keeps this example snappy; use `default()` for real runs.)
    let kb = KnowledgeBase::build(KnowledgeBaseConfig::fast());

    // 3. Configure a small sampling trajectory and run it on all cores.
    let config = SamplerConfig {
        population_size: 128,
        n_complexes: 2,
        iterations: 12,
        seed: 42,
        snapshot_iterations: vec![0, 12],
        ..SamplerConfig::default()
    };
    let sampler = MoscemSampler::new(target.clone(), kb, config);
    let result = sampler.run(&Executor::parallel());

    // 4. Report what the trajectory found.
    println!(
        "\nfinished in {:.2?} (modeled GTX-280 time {:.1} ms, modeled 1-core CPU time {:.1} ms, modeled speedup {:.1}x)",
        result.host_wall,
        result.modeled_gpu_us / 1e3,
        result.modeled_cpu_us / 1e3,
        result.modeled_speedup(),
    );
    println!(
        "non-dominated conformations: {} of {}",
        result.non_dominated_count(),
        result.population.len()
    );
    println!("best backbone RMSD to native: {:.2} A", result.best_rmsd());
    println!("acceptance rate: {:.2}", result.acceptance_rate);

    let start = &result.snapshots[0];
    let end = &result.snapshots[result.snapshots.len() - 1];
    println!(
        "front grew from {} (random start) to {} conformations; best RMSD improved {:.2} -> {:.2} A",
        start.non_dominated_count, end.non_dominated_count, start.best_rmsd, end.best_rmsd
    );
}
