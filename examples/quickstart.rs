//! Quickstart: build the engine, submit one loop-modeling job, and print
//! the Pareto front and the best decoy found.
//!
//! Run with: `cargo run --release --example quickstart`

use lms::prelude::*;

fn main() -> Result<(), Error> {
    // 1. Pick a target from the synthetic 53-loop benchmark (the paper's
    //    1cex 40:51, a 12-residue loop).
    let library = BenchmarkLibrary::standard();
    let target = library
        .target_by_name("1cex")
        .expect("1cex is in the benchmark");
    println!("Target: {target}");

    // 2. Build the engine over the knowledge base behind the TRIPLET and
    //    DIST potentials.  (`fast()` keeps this example snappy; use
    //    `default()` for real runs.)
    let kb = KnowledgeBase::build(KnowledgeBaseConfig::fast());
    let engine = LoopModelingEngine::builder(kb)
        .executor(ExecutorConfig::parallel())
        .build()?;

    // 3. Configure a small sampling trajectory and run it as one job.
    let config = SamplerConfig::builder()
        .population_size(128)
        .n_complexes(2)
        .iterations(12)
        .seed(42)
        .snapshot_iterations(vec![0, 12])
        .build()?;
    let job = Job::builder(target).config(config).build()?;
    let result = engine.run(job)?;

    // 4. Report what the trajectory found.
    println!(
        "\nfinished in {:.2?} (modeled GTX-280 time {:.1} ms, modeled 1-core CPU time {:.1} ms, modeled speedup {:.1}x)",
        result.host_wall,
        result.modeled_gpu_us / 1e3,
        result.modeled_cpu_us / 1e3,
        result.modeled_speedup(),
    );
    println!(
        "non-dominated conformations: {} of {}",
        result.non_dominated_count(),
        result.population.len()
    );
    println!("best backbone RMSD to native: {:.2} A", result.best_rmsd());
    println!("acceptance rate: {:.2}", result.acceptance_rate);

    let start = &result.snapshots[0];
    let end = &result.snapshots[result.snapshots.len() - 1];
    println!(
        "front grew from {} (random start) to {} conformations; best RMSD improved {:.2} -> {:.2} A",
        start.non_dominated_count, end.non_dominated_count, start.best_rmsd, end.best_rmsd
    );
    Ok(())
}
