//! Decoy production and cross-implementation equivalence: generate decoy
//! sets for one target with the scalar ("CPU") and the parallel ("GPU role")
//! executors and show that they populate the same structure clusters — the
//! functional-equivalence argument of the paper's Section V.B.
//!
//! Run with: `cargo run --release --example decoy_clustering`

use lms::prelude::*;

fn main() -> Result<(), Error> {
    let target = BenchmarkLibrary::standard()
        .target_by_name("3pte")
        .expect("3pte exists");
    let kb = KnowledgeBase::build(KnowledgeBaseConfig::fast());
    println!("target: {target}");

    let config = SamplerConfig::builder()
        .population_size(96)
        .n_complexes(2)
        .iterations(10)
        .seed(99)
        .build()?;
    let sampler = MoscemSampler::try_new(target.clone(), kb, config.clone())?;

    // Same seeds, different executors: identical decoys by construction.
    // Different seeds model the paper's situation (different random number
    // sequences on CPU vs GPU).
    let cpu_like = sampler.produce_decoys(
        &ExecutorConfig::scalar()
            .build()
            .expect("valid executor config"),
        40,
        3,
    );
    let gpu_like = {
        // A different random sequence, as on the real GPU.
        let cfg = config.to_builder().seed(1234).build()?;
        let sampler2 = MoscemSampler::try_new(
            target.clone(),
            KnowledgeBase::build(KnowledgeBaseConfig::fast()),
            cfg,
        )?;
        sampler2.produce_decoys(
            &ExecutorConfig::parallel()
                .build()
                .expect("valid executor config"),
            40,
            3,
        )
    };

    println!(
        "scalar executor:   {} decoys from {} trajectories, best RMSD {:.2} A",
        cpu_like.decoys.len(),
        cpu_like.trajectories_run,
        cpu_like.decoys.best_rmsd().unwrap_or(f64::NAN)
    );
    println!(
        "parallel executor: {} decoys from {} trajectories, best RMSD {:.2} A",
        gpu_like.decoys.len(),
        gpu_like.trajectories_run,
        gpu_like.decoys.best_rmsd().unwrap_or(f64::NAN)
    );

    let clusters = cluster_decoys(
        &target,
        cpu_like.decoys.decoys(),
        ClusterMetric::RmsdAngstrom,
        1.5,
    );
    println!(
        "\nscalar decoys fall into {} structure clusters (1.5 A radius)",
        clusters.len()
    );
    for (i, c) in clusters.iter().take(5).enumerate() {
        println!("  cluster {i}: {} members", c.size());
    }

    let report = compare_decoy_sets(
        &target,
        cpu_like.decoys.decoys(),
        gpu_like.decoys.decoys(),
        ClusterMetric::RmsdAngstrom,
        1.5,
    );
    println!(
        "\ncross-implementation equivalence: {} vs {} clusters, mutual coverage {:.0}% / {:.0}%",
        report.clusters_a,
        report.clusters_b,
        report.coverage_a_by_b * 100.0,
        report.coverage_b_by_a * 100.0
    );
    println!(
        "symmetric coverage {:.0}% — the two runs explore the same regions of the loop's conformation space.",
        report.symmetric_coverage() * 100.0
    );
    Ok(())
}
