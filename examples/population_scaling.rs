//! Population-size study (the workload behind the paper's Figure 3): run
//! several independent trajectories of 1akz(181:192) at increasing
//! population sizes and report how the number of distinct non-dominated
//! conformations and the best-decoy RMSD respond.  The independent
//! trajectories at each population size are submitted to the engine as one
//! batch, so they run concurrently.
//!
//! Run with: `cargo run --release --example population_scaling`

use lms::prelude::*;

fn main() -> Result<(), Error> {
    let target = BenchmarkLibrary::standard()
        .target_by_name("1akz")
        .expect("1akz exists");
    let kb = KnowledgeBase::build(KnowledgeBaseConfig::fast());
    let engine = LoopModelingEngine::builder(kb)
        .executor(ExecutorConfig::parallel())
        .build()?;
    let trajectories = 4u64;

    println!("target: {target}");
    println!(
        "{:<12} {:>26} {:>12} {:>12} {:>12}",
        "population", "avg distinct non-dominated", "min RMSD", "avg RMSD", "max RMSD"
    );
    for population in [32usize, 96, 256] {
        let config = SamplerConfig::builder()
            .population_size(population)
            .n_complexes((population / 32).max(1))
            .iterations(10)
            .seed(7)
            .build()?;
        // One job per independent trajectory, all in flight at once.
        let jobs: Vec<Job> = (0..trajectories)
            .map(|t| {
                Job::builder(target.clone())
                    .config(config.clone())
                    .seed(100 + t)
                    .label(format!("1akz/pop{population}/traj{t}"))
                    .build()
            })
            .collect::<Result<_, _>>()?;
        let results: Vec<TrajectoryResult> = engine
            .submit(jobs)
            .join()
            .into_iter()
            .map(|job| job.outcome)
            .collect::<Result<_, _>>()?;
        let stats = ensemble_stats(&results, 30.0).expect("trajectories ran");
        println!(
            "{:<12} {:>26.1} {:>11.2}A {:>11.2}A {:>11.2}A",
            population,
            stats.avg_distinct_non_dominated,
            stats.best_rmsd.min,
            stats.best_rmsd.mean,
            stats.best_rmsd.max
        );
    }
    println!("\nAs in the paper's Figure 3, larger populations sustain more structurally");
    println!("distinct non-dominated conformations and reach lower best-decoy RMSD.");
    Ok(())
}
