//! Population-size study (the workload behind the paper's Figure 3): run
//! several independent trajectories of 1akz(181:192) at increasing
//! population sizes and report how the number of distinct non-dominated
//! conformations and the best-decoy RMSD respond.
//!
//! Run with: `cargo run --release --example population_scaling`

use lms_core::{MoscemSampler, SamplerConfig};
use lms_decoys::ensemble_stats;
use lms_protein::BenchmarkLibrary;
use lms_scoring::{KnowledgeBase, KnowledgeBaseConfig};
use lms_simt::Executor;

fn main() {
    let target = BenchmarkLibrary::standard()
        .target_by_name("1akz")
        .expect("1akz exists");
    let kb = KnowledgeBase::build(KnowledgeBaseConfig::fast());
    let trajectories = 4;

    println!("target: {target}");
    println!(
        "{:<12} {:>26} {:>12} {:>12} {:>12}",
        "population", "avg distinct non-dominated", "min RMSD", "avg RMSD", "max RMSD"
    );
    for population in [32usize, 96, 256] {
        let config = SamplerConfig {
            population_size: population,
            n_complexes: (population / 32).max(1),
            iterations: 10,
            seed: 7,
            ..SamplerConfig::default()
        };
        let sampler = MoscemSampler::new(target.clone(), kb.clone(), config);
        let results: Vec<_> = (0..trajectories)
            .map(|t| sampler.run_with_seed(&Executor::parallel(), 100 + t))
            .collect();
        let stats = ensemble_stats(&results, 30.0).expect("trajectories ran");
        println!(
            "{:<12} {:>26.1} {:>11.2}A {:>11.2}A {:>11.2}A",
            population,
            stats.avg_distinct_non_dominated,
            stats.best_rmsd.min,
            stats.best_rmsd.mean,
            stats.best_rmsd.max
        );
    }
    println!("\nAs in the paper's Figure 3, larger populations sustain more structurally");
    println!("distinct non-dominated conformations and reach lower best-decoy RMSD.");
}
