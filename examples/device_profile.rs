//! Device-model walkthrough: run a trajectory through the engine, then
//! print the simulated GTX-280 kernel profile (the paper's Table II), the
//! occupancy table (Table III) and the modeled CPU-vs-GPU speedup (Table
//! I's metric).
//!
//! Run with: `cargo run --release --example device_profile`

use lms::prelude::*;

fn main() -> Result<(), Error> {
    // The device being modeled.
    let spec = DeviceSpec::gtx280();
    println!(
        "device: {} — {} SMs x {} cores = {} scalar processors, {} KiB registers/SM",
        spec.name,
        spec.sm_count,
        spec.cores_per_sm,
        spec.total_cores(),
        spec.registers_per_sm * 4 / 1024,
    );

    // Occupancy of each kernel at the paper's 128-thread blocks.
    let launch = LaunchConfig::for_population(15_360);
    println!("\nkernel occupancy at 128 threads/block:");
    for kind in KernelKind::ALL {
        let occ = launch.occupancy(&spec, kind);
        println!(
            "  {:<32} {:>2} registers/thread  -> {:>3.0}% occupancy ({} blocks/SM)",
            kind.name(),
            kind.registers_per_thread(),
            occ.occupancy * 100.0,
            occ.blocks_per_sm
        );
    }

    // A real (scaled-down) trajectory, instrumented with the device model.
    let target = BenchmarkLibrary::standard()
        .target_by_name("1cex")
        .expect("1cex exists");
    let kb = KnowledgeBase::build(KnowledgeBaseConfig::fast());
    let engine = LoopModelingEngine::builder(kb)
        .executor(ExecutorConfig::parallel())
        .build()?;
    let config = SamplerConfig::builder()
        .population_size(256)
        .n_complexes(2)
        .iterations(8)
        .seed(5)
        .build()?;
    let job = Job::builder(target).config(config).build()?;
    let result = engine.run(job)?;

    println!("\nsimulated device profile (paper Table II analogue):");
    println!("{}", result.profiler.table2_report());
    println!("occupancy summary (paper Table III analogue):");
    println!("{}", result.profiler.table3_report());
    println!(
        "modeled speedup over one CPU core: {:.1}x (paper reports ~40x at population 15,360)",
        result.modeled_speedup()
    );
    Ok(())
}
