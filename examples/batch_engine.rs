//! The batch job engine end to end: submit several loops of different
//! lengths as one batch, watch per-job progress while results stream back
//! in completion order, cancel a job mid-flight, and compare the batch's
//! wall-clock against running the same jobs sequentially.
//!
//! Run with: `cargo run --release --example batch_engine`

use lms::prelude::*;
use std::time::Instant;

/// The loops the batch models: a spread of lengths so jobs finish at
/// different times and the streaming order differs from submission order.
const TARGETS: [&str; 6] = ["1ads", "5pti", "1cex", "3pte", "1akz", "1ixh"];

fn make_jobs(library: &BenchmarkLibrary, config: &SamplerConfig) -> Result<Vec<Job>, ConfigError> {
    TARGETS
        .iter()
        .enumerate()
        .map(|(i, name)| {
            let target = library.target_by_name(name).expect("benchmark target");
            Job::builder(target)
                .config(config.clone())
                .seed(1000 + i as u64)
                .build()
        })
        .collect()
}

fn main() -> Result<(), Error> {
    let library = BenchmarkLibrary::standard();
    let kb = KnowledgeBase::build(KnowledgeBaseConfig::fast());

    // Build: the engine owns what all jobs share — knowledge base,
    // executor, and the pool of warm scoring workspaces.
    let engine = LoopModelingEngine::builder(kb)
        .executor(ExecutorConfig::parallel())
        .build()?;
    println!(
        "engine: {} concurrent jobs over the '{}' executor",
        engine.concurrency(),
        engine.executor().name()
    );

    let config = SamplerConfig::builder()
        .population_size(64)
        .n_complexes(2)
        .iterations(10)
        .build()?;

    // Submit: the whole batch goes in at once; the scheduler splits the
    // thread budget across jobs so small jobs don't leave cores idle.
    let batch_start = Instant::now();
    let mut batch = engine.submit(make_jobs(&library, &config)?);

    // Stream: results arrive in completion order; the handle exposes live
    // per-job progress the whole time.
    println!("\nstreaming results as jobs finish:");
    let mut completed = 0usize;
    while let Some(result) = batch.next_result() {
        completed += 1;
        let running = batch
            .progress()
            .iter()
            .filter(|p| p.status == JobStatus::Running)
            .count();
        match &result.outcome {
            Ok(trajectory) => println!(
                "  [{completed}/{}] {} (seed {}): best RMSD {:.2} A, {} non-dominated, {:.2?} ({} jobs still running)",
                TARGETS.len(),
                result.label,
                result.seed,
                trajectory.best_rmsd(),
                trajectory.non_dominated_count(),
                trajectory.host_wall,
                running,
            ),
            Err(e) => println!("  [{completed}/{}] {} failed: {e}", TARGETS.len(), result.label),
        }
    }
    let batch_wall = batch_start.elapsed();

    // Harvest: the same jobs once more, run one at a time, to show what the
    // scheduler buys on a batch of small jobs.
    let sequential_start = Instant::now();
    for job in make_jobs(&library, &config)? {
        let _ = engine.run(job)?;
    }
    let sequential_wall = sequential_start.elapsed();
    println!(
        "\nbatch of {} jobs: {:.2?} concurrent vs {:.2?} sequential ({:.2}x)",
        TARGETS.len(),
        batch_wall,
        sequential_wall,
        sequential_wall.as_secs_f64() / batch_wall.as_secs_f64().max(1e-9),
    );
    println!(
        "scratch pool now holds {} warm workspaces for the next batch",
        engine.scratch_pool().idle_count()
    );

    // Cancellation: start another batch and cancel one job immediately;
    // the rest of the batch is unaffected.
    let batch = engine.submit(make_jobs(&library, &config)?);
    let victim = batch.job_ids()[0];
    assert!(batch.cancel(victim));
    let results = batch.join();
    let cancelled = results.iter().filter(|r| r.is_cancelled()).count();
    let finished = results.iter().filter(|r| r.outcome.is_ok()).count();
    println!("\ncancellation demo: {cancelled} job cancelled, {finished} completed normally");
    Ok(())
}
