//! Modeling a user-defined loop: build a loop target from your own anchor
//! geometry and sequence (rather than the built-in benchmark), sample it,
//! and write the best decoy to a PDB file.
//!
//! Run with: `cargo run --release --example custom_loop`

use lms::prelude::*;
use std::sync::Arc;

fn main() -> Result<(), Error> {
    // In a real application the anchors and environment come from the host
    // protein's crystal structure; here we borrow plausible anchor geometry
    // from a benchmark target and define our own 10-residue loop sequence.
    let donor = BenchmarkLibrary::standard()
        .target_by_name("1ads")
        .expect("1ads exists");
    let sequence = parse_sequence("GSTAKDLQVW").expect("valid one-letter codes");
    assert_eq!(
        sequence.len(),
        donor.n_residues(),
        "keep the donor anchor spacing"
    );

    // A reference conformation to measure RMSD against (for a genuinely new
    // loop this would be unknown; we reuse the donor's native torsions so
    // the example can report a meaningful number).
    let builder = LoopBuilder::default();
    let frame: LoopFrame = donor.frame;
    let reference_torsions: Torsions = donor.native_torsions.clone();
    let reference_structure = builder.build(&frame, &sequence, &reference_torsions);

    let target = LoopTarget {
        name: "custom".to_string(),
        start_res: 1,
        end_res: sequence.len(),
        sequence: sequence.clone(),
        frame,
        // Borrow the donor's fixed surroundings too (cheap: Arc-shared), so
        // the burial objective below has a real environment to count
        // contacts against.  Use `Arc::new(Environment::empty())` for an
        // isolated peptide.
        environment: Arc::clone(&donor.environment),
        native_torsions: reference_torsions,
        native_structure: reference_structure,
        buried: false,
        env_cache: Default::default(),
    };
    println!("custom target: {target}");
    println!(
        "anchor gap to bridge: {:.2} A",
        frame.n_anchor.c.distance(frame.c_anchor.n)
    );

    let kb = KnowledgeBase::build(KnowledgeBaseConfig::fast());
    // `.burial_objective(true)` turns on the fourth scoring function: each
    // residue's environment contact number scored against its residue
    // type's knowledge-based burial reference.  The counts ride on the VDW
    // cell-list gathers, so the extra objective is nearly free; leave it
    // off (the default) to match the paper's three-objective setup exactly.
    let config = SamplerConfig::builder()
        .population_size(96)
        .n_complexes(2)
        .iterations(12)
        .seed(314)
        .burial_objective(true)
        .build()?;
    let sampler = MoscemSampler::try_new(target.clone(), kb, config)?;
    // Under the hood every trajectory runs the staged population-batched
    // kernel pipeline (flat SoA member arena, one kernel launch per stage
    // per iteration).  That is purely an internal layout/execution change:
    // the API and the sampled trajectories are identical to the per-member
    // implementation — same seed, same decoys, bit for bit.
    let production = sampler.produce_decoys(
        &ExecutorConfig::parallel()
            .build()
            .expect("valid executor config"),
        30,
        3,
    );

    println!(
        "collected {} structurally distinct decoys in {} trajectories",
        production.decoys.len(),
        production.trajectories_run
    );
    if let Some(best) = production
        .decoys
        .decoys()
        .iter()
        .min_by(|a, b| a.rmsd_to_native.partial_cmp(&b.rmsd_to_native).unwrap())
    {
        println!(
            "best decoy: {:.2} A from the reference, scores {}",
            best.rmsd_to_native, best.scores
        );
        let structure = target.build(&builder, &best.torsions);
        let pdb = to_pdb(&structure, &sequence, 'A', 1);
        let path = "results/custom_loop_best.pdb";
        std::fs::create_dir_all("results").ok();
        std::fs::write(path, pdb).expect("write PDB");
        println!(
            "wrote {path} (closure deviation {:.2} A)",
            target.closure_deviation(&structure)
        );
    }

    // Example torsion check: every decoy satisfies the loop-closure
    // condition within the sampler's tolerance.
    let worst_closure = production
        .decoys
        .decoys()
        .iter()
        .map(|d| target.closure_deviation(&target.build(&builder, &d.torsions)))
        .fold(0.0f64, f64::max);
    println!("worst closure deviation across decoys: {worst_closure:.2} A");
    Ok(())
}
