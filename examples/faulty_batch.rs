//! Fault-tolerant batch running: per-job deadlines and stall guards
//! ([`JobLimits`]), the numerical-health quarantine policy
//! ([`NumericGuard`]), seeded same-seed retries ([`RetryPolicy`]), and
//! reading the supervisor's attempt trace off each [`JobResult`].
//!
//! Run with: `cargo run --release --example faulty_batch`
//!
//! Everything here works in the default build.  To make faults *happen*
//! deterministically (injected panics / NaN poison / stalls at exact
//! kernel-launch sites), enable the `fault-injection` feature and arm a
//! `FaultPlan` on a job — see `crates/core/tests/fault_runtime.rs`.

use lms::prelude::*;
use std::time::Duration;

fn main() -> Result<(), Error> {
    let library = BenchmarkLibrary::standard();
    let kb = KnowledgeBase::build(KnowledgeBaseConfig::fast());

    // The supervisor re-runs retryable failures (stalls, numerical
    // faults, stage panics) with the job's own seed: up to 3 attempts,
    // exponential backoff from 10ms.  Terminal failures (deadline,
    // cancellation, config) are never retried.
    let engine = LoopModelingEngine::builder(kb)
        .executor(ExecutorConfig::parallel())
        .retry_policy(RetryPolicy::with_max_attempts(3))
        .build()?;

    // A healthy job: generous budgets that a normal run never touches,
    // plus the quarantine policy — a member whose candidate turns
    // non-finite mid-run is force-rejected instead of killing the job.
    let guarded = SamplerConfig::builder()
        .population_size(16)
        .iterations(4)
        .limits(
            JobLimits::none()
                .with_deadline(Duration::from_secs(120))
                .with_max_iterations(1_000)
                .with_max_closure_stall(50),
        )
        .numeric_guard(NumericGuard::Quarantine)
        .build()?;

    // A doomed job: a deadline so tight the trajectory cannot finish.
    // Deadlines are *terminal* — the supervisor reports them without
    // burning retry attempts.
    let doomed = SamplerConfig::builder()
        .population_size(16)
        .iterations(4)
        .limits(JobLimits::none().with_deadline(Duration::from_nanos(1)))
        .build()?;

    let jobs = vec![
        Job::builder(library.target_by_name("1cex").expect("benchmark target"))
            .config(guarded)
            .seed(7)
            .label("guarded")
            .build()?,
        Job::builder(library.target_by_name("5pti").expect("benchmark target"))
            .config(doomed)
            .seed(8)
            .label("doomed")
            .build()?,
    ];

    for result in engine.submit(jobs) {
        // The attempt trace: one entry per *failed* attempt.  Empty on
        // first-try success; on a retried transient it lists what each
        // rerun recovered from; on final failure the last entry is the
        // fatal error with zero backoff.
        for attempt in &result.attempts {
            println!(
                "  {}: attempt {} failed ({}), backed off {:?}",
                result.label, attempt.attempt, attempt.error, attempt.backoff
            );
        }
        match &result.outcome {
            Ok(trajectory) => println!(
                "{}: ok after {} failed attempt(s) — {} non-dominated of {}",
                result.label,
                result.attempts.len(),
                trajectory.non_dominated_count(),
                trajectory.population.len(),
            ),
            Err(e) => println!(
                "{}: failed ({}){}",
                result.label,
                e,
                if e.is_retryable() {
                    " — retryable, budget spent"
                } else {
                    " — terminal, not retried"
                },
            ),
        }
    }
    Ok(())
}
